package directory

import (
	"sync"
	"testing"
	"time"

	"sbqa/internal/model"
)

// stub is a minimal provider; classes nil means universal via the
// CanPerform predicate alone, declared non-nil also reports Capabilities.
type stub struct {
	id       model.ProviderID
	classes  []int // declared capabilities; nil = universal
	vetoFn   func(q model.Query) bool
	consumer model.ConsumerID
}

func (s *stub) ProviderID() model.ProviderID { return s.id }
func (s *stub) Snapshot(float64) model.ProviderSnapshot {
	return model.ProviderSnapshot{ID: s.id, Capacity: 1}
}
func (s *stub) CanPerform(q model.Query) bool {
	if s.vetoFn != nil {
		return s.vetoFn(q)
	}
	return true
}
func (s *stub) Intention(model.Query) model.Intention { return 0 }
func (s *stub) Bid(model.Query) float64               { return 1 }
func (s *stub) Capabilities() []int                   { return s.classes }

type consumerStub struct{ id model.ConsumerID }

func (c consumerStub) ConsumerID() model.ConsumerID { return c.id }
func (c consumerStub) Intention(model.Query, model.ProviderSnapshot) model.Intention {
	return 0
}

func ids(ps []Provider) []model.ProviderID {
	out := make([]model.ProviderID, len(ps))
	for i, p := range ps {
		out[i] = p.ProviderID()
	}
	return out
}

func equalIDs(a, b []model.ProviderID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCandidatesOrderedMerge(t *testing.T) {
	d := New()
	// Universal providers 5, 1; class-1 specialists 3, 7; class-2 specialist 2.
	d.RegisterProvider(&stub{id: 5})
	d.RegisterProvider(&stub{id: 1})
	d.RegisterProvider(&stub{id: 3, classes: []int{1}})
	d.RegisterProvider(&stub{id: 7, classes: []int{1}})
	d.RegisterProvider(&stub{id: 2, classes: []int{2}})

	got := ids(d.Candidates(model.Query{Class: 1}, nil))
	if want := []model.ProviderID{1, 3, 5, 7}; !equalIDs(got, want) {
		t.Errorf("class 1 candidates = %v, want %v", got, want)
	}
	got = ids(d.Candidates(model.Query{Class: 2}, nil))
	if want := []model.ProviderID{1, 2, 5}; !equalIDs(got, want) {
		t.Errorf("class 2 candidates = %v, want %v", got, want)
	}
	// A class with no specialists still reaches the universal providers.
	got = ids(d.Candidates(model.Query{Class: 9}, nil))
	if want := []model.ProviderID{1, 5}; !equalIDs(got, want) {
		t.Errorf("class 9 candidates = %v, want %v", got, want)
	}
}

func TestCandidatesOrderIndependentOfRegistration(t *testing.T) {
	build := func(order []model.ProviderID) *Directory {
		d := New()
		for _, id := range order {
			d.RegisterProvider(&stub{id: id})
		}
		return d
	}
	a := build([]model.ProviderID{4, 2, 9, 1, 7})
	b := build([]model.ProviderID{7, 1, 9, 2, 4})
	ga := ids(a.Candidates(model.Query{}, nil))
	gb := ids(b.Candidates(model.Query{}, nil))
	if !equalIDs(ga, gb) {
		t.Errorf("candidate order depends on registration order: %v vs %v", ga, gb)
	}
	for i := 1; i < len(ga); i++ {
		if ga[i-1] >= ga[i] {
			t.Fatalf("candidates not in ascending ID order: %v", ga)
		}
	}
}

func TestCanPerformStaysAuthoritative(t *testing.T) {
	d := New()
	// Declared class-1 capable, but vetoes odd query IDs.
	d.RegisterProvider(&stub{
		id: 1, classes: []int{1},
		vetoFn: func(q model.Query) bool { return q.ID%2 == 0 },
	})
	if got := d.Candidates(model.Query{ID: 2, Class: 1}, nil); len(got) != 1 {
		t.Errorf("even query candidates = %d, want 1", len(got))
	}
	if got := d.Candidates(model.Query{ID: 3, Class: 1}, nil); len(got) != 0 {
		t.Errorf("vetoed query candidates = %d, want 0", len(got))
	}
}

func TestReplaceReindexes(t *testing.T) {
	d := New()
	d.RegisterProvider(&stub{id: 1, classes: []int{1}})
	// Re-register the same ID as a class-2 specialist.
	d.RegisterProvider(&stub{id: 1, classes: []int{2}})
	if got := d.Candidates(model.Query{Class: 1}, nil); len(got) != 0 {
		t.Errorf("stale class-1 index entry survived replacement: %v", ids(got))
	}
	if got := d.Candidates(model.Query{Class: 2}, nil); len(got) != 1 {
		t.Errorf("replacement not indexed under class 2: %v", ids(got))
	}
	// And replacement with a universal provider.
	d.RegisterProvider(&stub{id: 1})
	if got := d.Candidates(model.Query{Class: 7}, nil); len(got) != 1 {
		t.Errorf("universal replacement missing: %v", ids(got))
	}
}

func TestUnregisterProvider(t *testing.T) {
	d := New()
	d.RegisterProvider(&stub{id: 1})
	d.RegisterProvider(&stub{id: 2, classes: []int{3}})
	d.UnregisterProvider(1)
	d.UnregisterProvider(2)
	d.UnregisterProvider(99) // unknown: no-op
	if d.NumProviders() != 0 {
		t.Errorf("NumProviders = %d", d.NumProviders())
	}
	if got := d.Candidates(model.Query{Class: 3}, nil); len(got) != 0 {
		t.Errorf("unregistered providers still discoverable: %v", ids(got))
	}
	if d.Provider(1) != nil {
		t.Error("Provider(1) should be nil after unregistration")
	}
}

func TestConsumers(t *testing.T) {
	d := New()
	d.RegisterConsumer(consumerStub{id: 4})
	if d.NumConsumers() != 1 || d.Consumer(4) == nil {
		t.Error("consumer not registered")
	}
	d.UnregisterConsumer(4)
	if d.NumConsumers() != 0 || d.Consumer(4) != nil {
		t.Error("consumer not unregistered")
	}
}

// TestCanPerformMayReenterDirectory: the CanPerform predicate is user code
// and runs outside the directory's critical section, so a predicate that
// reads — or even writes — the directory must not deadlock Candidates (it
// would with the predicate applied under the RLock: a write from the
// goroutine holding the read lock can never acquire the write lock).
func TestCanPerformMayReenterDirectory(t *testing.T) {
	d := New()
	d.RegisterProvider(&stub{id: 1})
	d.RegisterProvider(&stub{id: 2, vetoFn: func(q model.Query) bool {
		if d.NumProviders() < 1 { // read re-entry
			t.Error("directory empty inside CanPerform")
		}
		d.RegisterConsumer(consumerStub{id: 42}) // write re-entry
		return false
	}})
	done := make(chan []Provider, 1)
	go func() { done <- d.Candidates(model.Query{}, nil) }()
	select {
	case got := <-done:
		if want := []model.ProviderID{1}; !equalIDs(ids(got), want) {
			t.Errorf("candidates = %v, want %v", ids(got), want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Candidates deadlocked on a re-entrant CanPerform")
	}
	if d.Consumer(42) == nil {
		t.Error("write from CanPerform was lost")
	}
}

// TestConcurrentChurn exercises the directory under -race: readers discover
// candidates while writers register and unregister providers.
func TestConcurrentChurn(t *testing.T) {
	d := New()
	for i := 0; i < 8; i++ {
		d.RegisterProvider(&stub{id: model.ProviderID(i)})
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			id := model.ProviderID(100 + w)
			for i := 0; i < 500; i++ {
				d.RegisterProvider(&stub{id: id, classes: []int{w % 2}})
				d.UnregisterProvider(id)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var buf []Provider
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = d.Candidates(model.Query{Class: 1}, buf[:0])
				if len(buf) < 8 {
					t.Errorf("lost permanent providers: %d", len(buf))
					return
				}
				_ = d.Provider(3)
				_ = d.NumProviders()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if d.NumProviders() != 8 {
		t.Errorf("NumProviders after churn = %d, want 8", d.NumProviders())
	}
}
