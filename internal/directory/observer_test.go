package directory

import (
	"testing"

	"sbqa/internal/event"
	"sbqa/internal/model"
)

// TestDirectoryObserverChurnEvents: registrations and departures emit, with
// re-registrations emitting again and no-op unregistrations staying silent.
func TestDirectoryObserverChurnEvents(t *testing.T) {
	var preg, pdep, creg, cdep int
	d := New()
	d.SetObserver(event.Funcs{
		ProviderRegistered: func(model.ProviderID) { preg++ },
		ProviderDeparted:   func(model.ProviderID) { pdep++ },
		ConsumerRegistered: func(model.ConsumerID) { creg++ },
		ConsumerDeparted:   func(model.ConsumerID) { cdep++ },
	})

	d.RegisterProvider(&stub{id: 1})
	d.RegisterProvider(&stub{id: 1, classes: []int{2}}) // replacement re-emits
	d.RegisterConsumer(consumerStub{id: 5})
	d.UnregisterProvider(1)
	d.UnregisterProvider(1) // already gone: silent
	d.UnregisterConsumer(5)
	d.UnregisterConsumer(9) // never registered: silent

	if preg != 2 || pdep != 1 || creg != 1 || cdep != 1 {
		t.Errorf("events = preg:%d pdep:%d creg:%d cdep:%d, want 2/1/1/1", preg, pdep, creg, cdep)
	}

	// Clearing the observer silences subsequent churn.
	d.SetObserver(nil)
	d.RegisterProvider(&stub{id: 7})
	d.UnregisterProvider(7)
	if preg != 2 || pdep != 1 {
		t.Errorf("nil observer still received events: preg:%d pdep:%d", preg, pdep)
	}
}

// TestDirectoryProviderIDs: the listing is sorted and point-in-time.
func TestDirectoryProviderIDs(t *testing.T) {
	d := New()
	for _, id := range []model.ProviderID{5, 1, 3} {
		d.RegisterProvider(&stub{id: id})
	}
	got := d.ProviderIDs()
	want := []model.ProviderID{1, 3, 5}
	if !equalIDs(got, want) {
		t.Errorf("ProviderIDs = %v, want %v", got, want)
	}
}
