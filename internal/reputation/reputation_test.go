package reputation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBookAlphaRepair(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5} {
		b := NewBook(bad)
		b.Observe(1, 1)
		want := (1-DefaultAlpha)*Initial + DefaultAlpha*1
		if got := b.Reputation(1); math.Abs(got-want) > 1e-12 {
			t.Errorf("alpha=%v: reputation = %v, want %v", bad, got, want)
		}
	}
}

func TestInitialReputation(t *testing.T) {
	b := NewBook(0.3)
	if got := b.Reputation(42); got != Initial {
		t.Errorf("unknown provider = %v, want %v", got, Initial)
	}
	if b.Known() != 0 {
		t.Errorf("Known = %d", b.Known())
	}
}

func TestObserveEWMA(t *testing.T) {
	b := NewBook(0.5)
	b.Observe(1, 1)
	if got := b.Reputation(1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("after one good obs = %v, want 0.75", got)
	}
	b.Observe(1, 0)
	if got := b.Reputation(1); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("after one bad obs = %v, want 0.375", got)
	}
	if b.Known() != 1 {
		t.Errorf("Known = %d", b.Known())
	}
}

func TestObserveClamps(t *testing.T) {
	b := NewBook(1) // reputation = last observation
	b.Observe(1, 42)
	if got := b.Reputation(1); got != 1 {
		t.Errorf("clamped high = %v", got)
	}
	b.Observe(1, -5)
	if got := b.Reputation(1); got != 0 {
		t.Errorf("clamped low = %v", got)
	}
}

func TestReputationStaysInUnitInterval(t *testing.T) {
	f := func(obs []float64) bool {
		b := NewBook(0.3)
		for _, o := range obs {
			if math.IsNaN(o) {
				continue
			}
			b.Observe(7, o)
			r := b.Reputation(7)
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvergesToSteadyQuality(t *testing.T) {
	b := NewBook(0.2)
	for i := 0; i < 200; i++ {
		b.Observe(3, 0.9)
	}
	if got := b.Reputation(3); math.Abs(got-0.9) > 1e-6 {
		t.Errorf("steady-state reputation = %v, want ~0.9", got)
	}
}

func TestForget(t *testing.T) {
	b := NewBook(0.5)
	b.Observe(1, 1)
	b.Forget(1)
	if got := b.Reputation(1); got != Initial {
		t.Errorf("after Forget = %v, want %v", got, Initial)
	}
	b.Forget(99) // absent key must not panic
}

func TestQualityFromLatency(t *testing.T) {
	if got := QualityFromLatency(0, 10); got != 1 {
		t.Errorf("zero latency = %v, want 1", got)
	}
	if got := QualityFromLatency(10, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("latency at target = %v, want 0.5", got)
	}
	if got := QualityFromLatency(90, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("9x target = %v, want 0.1", got)
	}
	if got := QualityFromLatency(5, 0); got != 1 {
		t.Errorf("non-positive target = %v, want 1", got)
	}
	if got := QualityFromLatency(-3, 10); got != 1 {
		t.Errorf("negative latency treated as 0 → %v, want 1", got)
	}
}

func TestQualityFromLatencyMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return QualityFromLatency(x, 5) >= QualityFromLatency(y, 5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
