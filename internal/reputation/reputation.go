// Package reputation tracks, per consumer, an exponentially weighted
// reputation for every provider the consumer has interacted with. The SbQA
// framework lets consumers trade their static preferences for provider
// reputation when expressing intentions (see internal/intention), which is
// how the demo's "reputation-based preferences" for BOINC consumers are
// realized.
package reputation

import (
	"sbqa/internal/model"
)

// DefaultAlpha is the default EWMA weight of the most recent observation.
const DefaultAlpha = 0.2

// Initial is the reputation assumed for a provider never observed before:
// neither good nor bad.
const Initial = 0.5

// Book is one consumer's reputation ledger. It is not safe for concurrent
// use.
type Book struct {
	alpha  float64
	scores map[model.ProviderID]float64
}

// NewBook returns a ledger with the given EWMA weight; alpha outside (0, 1]
// falls back to DefaultAlpha.
func NewBook(alpha float64) *Book {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &Book{alpha: alpha, scores: make(map[model.ProviderID]float64)}
}

// Observe folds one interaction outcome into provider p's reputation.
// quality must be in [0, 1]: 1 for a perfect interaction (fast, correct
// result), 0 for a failure (no or invalid result). Values are clamped.
func (b *Book) Observe(p model.ProviderID, quality float64) {
	if quality < 0 {
		quality = 0
	}
	if quality > 1 {
		quality = 1
	}
	cur, ok := b.scores[p]
	if !ok {
		cur = Initial
	}
	b.scores[p] = (1-b.alpha)*cur + b.alpha*quality
}

// Reputation returns provider p's reputation in [0, 1]; Initial if p has
// never been observed.
func (b *Book) Reputation(p model.ProviderID) float64 {
	if r, ok := b.scores[p]; ok {
		return r
	}
	return Initial
}

// Known returns the number of providers with recorded observations.
func (b *Book) Known() int { return len(b.scores) }

// Forget drops provider p's history (e.g. after it leaves the system).
func (b *Book) Forget(p model.ProviderID) { delete(b.scores, p) }

// QualityFromLatency converts an observed response time into a quality
// signal: 1 at zero latency, 0.5 at the target, approaching 0 as latency
// grows. target must be > 0; non-positive targets score 1 for any latency.
func QualityFromLatency(observed, target float64) float64 {
	if target <= 0 {
		return 1
	}
	if observed < 0 {
		observed = 0
	}
	return target / (target + observed)
}
