// Package qos is the overload-survival subsystem between the gateway and
// the shard mediators: service classes on queries, token-bucket admission
// control, a class-aware shard scheduler (weighted fair queueing across
// classes with a strict-priority option, earliest-deadline-first within a
// class), deadline-based load shedding driven by a per-shard EWMA of
// mediation service time, and the brownout ladder the policy tuner steps
// under sustained pressure.
//
// The package sits at the bottom of the import graph (stdlib only): the
// live engine embeds a Scheduler per shard, the gateway runs a Limiter in
// front of Submit, and policy.Spec carries a *qos.Spec block so
// PUT /v1/policy reconfigures all of it live.
//
// # Design
//
// Queries carry a class name (model.Query.QoS) and an optional absolute
// deadline on the engine clock (model.Query.Deadline). The scheduler never
// drops silently: every admission decision that refuses a query is a typed
// shed with a reason — "deadline" (the EWMA × queue-depth estimate says the
// deadline cannot be met), "queue_full" (the class's configured depth bound
// is reached), or "brownout" (the tuner has widened shedding to this
// class). Classes without an explicit depth bound keep the engine's
// historical backpressure semantics: a full queue blocks the submitter
// instead of shedding, so a no-QoS configuration behaves exactly like the
// pre-QoS FIFO engine.
package qos

import (
	"fmt"
	"sort"
)

// The built-in class names. The class set is extensible: any name declared
// in Spec.Classes is a valid class.
const (
	Interactive = "interactive"
	Batch       = "batch"
	Background  = "background"
)

// Shed reasons, as they appear in *live.ShedError.Reason, event.Shed.Reason
// and the sbqa_shed_total{reason} metric. RateLimit is the gateway
// admission analog (sbqa_admission_rejected_total).
const (
	ReasonDeadline  = "deadline"
	ReasonQueueFull = "queue_full"
	ReasonBrownout  = "brownout"
	ReasonRateLimit = "rate_limit"
)

// reasonIndex maps a shed reason to its counter slot.
const (
	reasonDeadlineIdx = iota
	reasonQueueFullIdx
	reasonBrownoutIdx
	numReasons
)

// Reasons lists the scheduler shed reasons in counter order.
var Reasons = [numReasons]string{ReasonDeadline, ReasonQueueFull, ReasonBrownout}

// ClassSpec declares one service class in a policy's qos block.
type ClassSpec struct {
	// Name identifies the class ("interactive", "batch", ... — any
	// non-empty string).
	Name string `json:"name"`

	// Weight is the class's weighted-fair share (smooth weighted
	// round-robin across non-empty class queues). Zero means 1.
	Weight int `json:"weight,omitempty"`

	// Priority marks the class strictly urgent: priority classes are
	// always served before non-priority ones (weighted-fair among
	// themselves). Use sparingly — a saturating priority class starves
	// everything below it.
	Priority bool `json:"priority,omitempty"`

	// MaxQueueDepth bounds the class's per-shard queue: beyond it,
	// submissions shed immediately with reason "queue_full". Zero keeps
	// the engine's blocking backpressure at its global queue depth.
	MaxQueueDepth int `json:"max_queue_depth,omitempty"`

	// Rate and Burst configure the gateway's per-class token bucket
	// (queries/second sustained, bucket capacity). Zero rate means
	// unlimited.
	Rate  float64 `json:"rate,omitempty"`
	Burst float64 `json:"burst,omitempty"`
}

// Spec is the policy-level QoS configuration — the `qos` block of
// policy.Spec. It is orthogonal to the allocator kind and therefore valid
// on every policy, baselines included.
type Spec struct {
	// Classes declares the service classes in scheduling-table order
	// (brownout sheds from the end of this list upward, so order lowest
	// classes last). Empty means the single default class with the
	// engine's historical FIFO semantics.
	Classes []ClassSpec `json:"classes,omitempty"`

	// DefaultClass is the class assigned to queries that carry none.
	// Empty means the first declared class.
	DefaultClass string `json:"default_class,omitempty"`

	// ConsumerRate and ConsumerBurst configure the gateway's
	// per-consumer token bucket. Zero rate means unlimited.
	ConsumerRate  float64 `json:"consumer_rate,omitempty"`
	ConsumerBurst float64 `json:"consumer_burst,omitempty"`
}

// DefaultSpec returns the three-class default ladder: interactive (weight
// 8) over batch (weight 3) over background (weight 1), no rate limits, no
// explicit depth bounds.
func DefaultSpec() Spec {
	return Spec{
		Classes: []ClassSpec{
			{Name: Interactive, Weight: 8},
			{Name: Batch, Weight: 3},
			{Name: Background, Weight: 1},
		},
		DefaultClass: Interactive,
	}
}

// Validate rejects specs that can only be mistakes. A nil or zero Spec is
// valid (single default class, no limits).
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	seen := make(map[string]bool, len(s.Classes))
	for i, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("qos: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("qos: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight < 0 {
			return fmt.Errorf("qos: class %q: weight cannot be negative", c.Name)
		}
		if c.MaxQueueDepth < 0 {
			return fmt.Errorf("qos: class %q: max_queue_depth cannot be negative", c.Name)
		}
		if c.Rate < 0 || c.Burst < 0 {
			return fmt.Errorf("qos: class %q: rate/burst cannot be negative", c.Name)
		}
	}
	if s.DefaultClass != "" && len(s.Classes) > 0 && !seen[s.DefaultClass] {
		return fmt.Errorf("qos: default_class %q is not a declared class", s.DefaultClass)
	}
	if s.ConsumerRate < 0 || s.ConsumerBurst < 0 {
		return fmt.Errorf("qos: consumer_rate/consumer_burst cannot be negative")
	}
	return nil
}

// Normalized returns a copy with defaults filled in: weights default to 1,
// the default class to the first declared one, bursts to the rate (at
// least 1) when a rate is set.
func (s Spec) Normalized() Spec {
	out := s
	out.Classes = append([]ClassSpec(nil), s.Classes...)
	for i := range out.Classes {
		if out.Classes[i].Weight < 1 {
			out.Classes[i].Weight = 1
		}
		if out.Classes[i].Rate > 0 && out.Classes[i].Burst <= 0 {
			out.Classes[i].Burst = maxf(out.Classes[i].Rate, 1)
		}
	}
	if out.DefaultClass == "" && len(out.Classes) > 0 {
		out.DefaultClass = out.Classes[0].Name
	}
	if out.ConsumerRate > 0 && out.ConsumerBurst <= 0 {
		out.ConsumerBurst = maxf(out.ConsumerRate, 1)
	}
	return out
}

// ClassNames returns the declared class names in spec order.
func (s Spec) ClassNames() []string {
	out := make([]string, len(s.Classes))
	for i, c := range s.Classes {
		out[i] = c.Name
	}
	return out
}

// shedOrder returns class indices from most-sheddable to least: ascending
// weight, non-priority before priority, later declaration first among
// ties. Brownout level L sheds the first L entries of this order.
func shedOrder(classes []ClassSpec) []int {
	idx := make([]int, len(classes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ca, cb := classes[idx[a]], classes[idx[b]]
		if ca.Priority != cb.Priority {
			return !ca.Priority
		}
		if ca.Weight != cb.Weight {
			return ca.Weight < cb.Weight
		}
		return idx[a] > idx[b]
	})
	return idx
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
