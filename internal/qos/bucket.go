package qos

import (
	"math"
	"sync"
)

// bucket is one token bucket. Tokens refill continuously at rate/second up
// to burst; a take of one token admits one query. All fields are guarded
// by the owning Limiter's mutex.
type bucket struct {
	tokens float64
	last   float64 // engine-clock seconds of the last refill
}

// take refills the bucket to now and takes one token if available,
// returning (admitted, seconds until one token would be available).
func (b *bucket) take(now, rate, burst float64) (bool, float64) {
	if now > b.last {
		b.tokens = math.Min(burst, b.tokens+(now-b.last)*rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if rate <= 0 {
		return false, math.Inf(1)
	}
	return false, (1 - b.tokens) / rate
}

// maxConsumerBuckets bounds the per-consumer bucket map: beyond it the map
// is reset wholesale (a momentary amnesty beats unbounded memory under a
// consumer-ID scan).
const maxConsumerBuckets = 1 << 16

// Decision is one admission verdict.
type Decision struct {
	// OK reports whether the query is admitted.
	OK bool
	// Scope names what refused it: "consumer" or "class".
	Scope string
	// Class is the resolved class name the decision applied to.
	Class string
	// RetryAfter is the suggested wait in seconds before retrying.
	RetryAfter float64
}

// Limiter is the gateway's admission controller: a per-consumer token
// bucket plus one bucket per configured class. The zero value admits
// everything; build configured limiters with NewLimiter. Safe for
// concurrent use.
type Limiter struct {
	mu        sync.Mutex
	spec      Spec // normalized
	now       func() float64
	consumers map[int64]*bucket
	classes   map[string]*bucket
	rejected  uint64
}

// NewLimiter builds a limiter from a normalized spec. now supplies the
// clock in seconds (any monotonic origin).
func NewLimiter(spec Spec, now func() float64) *Limiter {
	return &Limiter{
		spec:      spec.Normalized(),
		now:       now,
		consumers: make(map[int64]*bucket),
		classes:   make(map[string]*bucket),
	}
}

// Resolve maps a request's class name to the configured class, applying
// the default for empty names. Unknown names return ok=false.
func (l *Limiter) Resolve(class string) (string, bool) {
	if l == nil {
		return class, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if class == "" {
		return l.spec.DefaultClass, true
	}
	if len(l.spec.Classes) == 0 {
		return class, true
	}
	for _, c := range l.spec.Classes {
		if c.Name == class {
			return class, true
		}
	}
	return class, false
}

// Allow runs both buckets for one submission: the consumer bucket first,
// then the class bucket. A nil limiter admits everything.
func (l *Limiter) Allow(consumer int64, class string) Decision {
	if l == nil {
		return Decision{OK: true, Class: class}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if class == "" {
		class = l.spec.DefaultClass
	}
	if l.spec.ConsumerRate > 0 {
		if len(l.consumers) >= maxConsumerBuckets {
			l.consumers = make(map[int64]*bucket)
		}
		b := l.consumers[consumer]
		if b == nil {
			b = &bucket{tokens: l.spec.ConsumerBurst, last: now}
			l.consumers[consumer] = b
		}
		if ok, wait := b.take(now, l.spec.ConsumerRate, l.spec.ConsumerBurst); !ok {
			l.rejected++
			return Decision{Scope: "consumer", Class: class, RetryAfter: wait}
		}
	}
	for _, c := range l.spec.Classes {
		if c.Name != class || c.Rate <= 0 {
			continue
		}
		b := l.classes[class]
		if b == nil {
			b = &bucket{tokens: c.Burst, last: now}
			l.classes[class] = b
		}
		if ok, wait := b.take(now, c.Rate, c.Burst); !ok {
			l.rejected++
			return Decision{Scope: "class", Class: class, RetryAfter: wait}
		}
		break
	}
	return Decision{OK: true, Class: class}
}

// Rejected returns the cumulative count of refused submissions.
func (l *Limiter) Rejected() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejected
}

// Spec returns the limiter's normalized spec.
func (l *Limiter) Spec() Spec {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spec
}
