package qos

import (
	"context"
	"math"
	"testing"
	"time"
)

func fixedClock(t *float64) func() float64 { return func() float64 { return *t } }

func TestSpecValidateAndNormalize(t *testing.T) {
	s := DefaultSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []Spec{
		{Classes: []ClassSpec{{Name: ""}}},
		{Classes: []ClassSpec{{Name: "a"}, {Name: "a"}}},
		{Classes: []ClassSpec{{Name: "a", Weight: -1}}},
		{Classes: []ClassSpec{{Name: "a", MaxQueueDepth: -1}}},
		{Classes: []ClassSpec{{Name: "a", Rate: -1}}},
		{Classes: []ClassSpec{{Name: "a"}}, DefaultClass: "b"},
		{ConsumerRate: -1},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	n := (Spec{Classes: []ClassSpec{{Name: "x"}, {Name: "y", Rate: 5}}}).Normalized()
	if n.Classes[0].Weight != 1 || n.DefaultClass != "x" {
		t.Fatalf("normalize defaults: %+v", n)
	}
	if n.Classes[1].Burst != 5 {
		t.Fatalf("burst default = %v, want rate", n.Classes[1].Burst)
	}
}

func TestBucketAdmissionAndRetryAfter(t *testing.T) {
	now := 0.0
	l := NewLimiter(Spec{
		Classes:      []ClassSpec{{Name: Interactive, Rate: 2, Burst: 2}},
		ConsumerRate: 1, ConsumerBurst: 1,
	}, fixedClock(&now))

	if d := l.Allow(1, Interactive); !d.OK {
		t.Fatalf("first submission refused: %+v", d)
	}
	d := l.Allow(1, Interactive)
	if d.OK || d.Scope != "consumer" {
		t.Fatalf("second submission should hit the consumer bucket: %+v", d)
	}
	if d.RetryAfter <= 0 || d.RetryAfter > 1 {
		t.Fatalf("retry-after = %v, want (0, 1]", d.RetryAfter)
	}
	// A different consumer passes the consumer bucket but drains the class
	// bucket (one token left of burst 2).
	if d := l.Allow(2, Interactive); !d.OK {
		t.Fatalf("consumer 2 refused: %+v", d)
	}
	d = l.Allow(3, Interactive)
	if d.OK || d.Scope != "class" {
		t.Fatalf("class bucket should refuse: %+v", d)
	}
	if got := l.Rejected(); got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
	// Refill: one second restores one consumer token.
	now = 1.0
	if d := l.Allow(1, Interactive); !d.OK {
		t.Fatalf("post-refill refused: %+v", d)
	}
}

func TestLimiterResolve(t *testing.T) {
	l := NewLimiter(DefaultSpec(), func() float64 { return 0 })
	if c, ok := l.Resolve(""); !ok || c != Interactive {
		t.Fatalf("empty class → %q, %v", c, ok)
	}
	if _, ok := l.Resolve("no-such-class"); ok {
		t.Fatal("unknown class resolved")
	}
	if c, ok := l.Resolve(Batch); !ok || c != Batch {
		t.Fatalf("batch → %q, %v", c, ok)
	}
}

func TestSchedulerFIFOWithinSingleClass(t *testing.T) {
	now := 0.0
	s := NewScheduler[int](Spec{}, 10, fixedClock(&now))
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if shed, err := s.Push(ctx, 0, 0, i); shed != nil || err != nil {
			t.Fatalf("push %d: shed=%v err=%v", i, shed, err)
		}
	}
	for i := 0; i < 5; i++ {
		v, res, ok := s.Pop()
		if !ok || res.Shed || v != i {
			t.Fatalf("pop %d → %d (shed=%v ok=%v)", i, v, res.Shed, ok)
		}
	}
}

func TestSchedulerEDFWithinClass(t *testing.T) {
	now := 0.0
	s := NewScheduler[string](Spec{}, 10, fixedClock(&now))
	ctx := context.Background()
	s.Push(ctx, 0, 9, "late")
	s.Push(ctx, 0, 3, "urgent")
	s.Push(ctx, 0, 0, "whenever") // no deadline sorts last
	s.Push(ctx, 0, 5, "middle")
	want := []string{"urgent", "middle", "late", "whenever"}
	for _, w := range want {
		v, res, ok := s.Pop()
		if !ok || res.Shed || v != w {
			t.Fatalf("pop → %q (want %q)", v, w)
		}
	}
}

func TestSchedulerWeightedFairShare(t *testing.T) {
	now := 0.0
	spec := Spec{Classes: []ClassSpec{
		{Name: "heavy", Weight: 3},
		{Name: "light", Weight: 1},
	}}
	s := NewScheduler[string](spec, 1000, fixedClock(&now))
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		s.Push(ctx, 0, 0, "heavy")
		s.Push(ctx, 1, 0, "light")
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		v, _, _ := s.Pop()
		counts[v]++
	}
	// Weight 3:1 over 40 pops while both queues stay backlogged → 30/10.
	if counts["heavy"] != 30 || counts["light"] != 10 {
		t.Fatalf("WFQ shares = %+v, want heavy:30 light:10", counts)
	}
}

func TestSchedulerStrictPriority(t *testing.T) {
	now := 0.0
	spec := Spec{Classes: []ClassSpec{
		{Name: "urgent", Weight: 1, Priority: true},
		{Name: "bulk", Weight: 100},
	}}
	s := NewScheduler[string](spec, 1000, fixedClock(&now))
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		s.Push(ctx, 1, 0, "bulk")
		s.Push(ctx, 0, 0, "urgent")
	}
	// Every urgent item drains before any bulk one, whatever the weights.
	for i := 0; i < 10; i++ {
		if v, _, _ := s.Pop(); v != "urgent" {
			t.Fatalf("pop %d = %q, want urgent", i, v)
		}
	}
	if v, _, _ := s.Pop(); v != "bulk" {
		t.Fatalf("want bulk after urgents, got %q", v)
	}
}

func TestSchedulerDeadlineShedAtAdmission(t *testing.T) {
	now := 0.0
	s := NewScheduler[int](Spec{}, 100, fixedClock(&now))
	ctx := context.Background()
	// No EWMA yet → no basis to shed, even with a tight deadline.
	if shed, _ := s.Push(ctx, 0, 0.001, 1); shed != nil {
		t.Fatalf("shed with no service-time estimate: %+v", shed)
	}
	s.Pop()
	s.ObserveService(1.0) // 1s per mediation
	// Queue two items; the third's deadline (0.5s away) cannot be met
	// behind ~3 × 1s of work.
	s.Push(ctx, 0, 0, 2)
	s.Push(ctx, 0, 0, 3)
	shed, err := s.Push(ctx, 0, now+0.5, 4)
	if err != nil || shed == nil {
		t.Fatalf("want deadline shed, got shed=%v err=%v", shed, err)
	}
	if shed.Reason != ReasonDeadline || shed.EstimatedWait < 1 {
		t.Fatalf("shed = %+v", shed)
	}
	// A feasible deadline still admits.
	if shed, _ := s.Push(ctx, 0, now+100, 5); shed != nil {
		t.Fatalf("feasible deadline shed: %+v", shed)
	}
}

func TestSchedulerExpiredDeadlineShedsAtDequeue(t *testing.T) {
	now := 0.0
	s := NewScheduler[int](Spec{}, 100, fixedClock(&now))
	ctx := context.Background()
	s.Push(ctx, 0, 1.0, 7)
	now = 2.0 // deadline passed while queued
	v, res, ok := s.Pop()
	if !ok || !res.Shed || v != 7 {
		t.Fatalf("pop = %d shed=%v ok=%v", v, res.Shed, ok)
	}
	if res.Info.Reason != ReasonDeadline {
		t.Fatalf("reason = %q", res.Info.Reason)
	}
}

func TestSchedulerQueueFullSheds(t *testing.T) {
	now := 0.0
	spec := Spec{Classes: []ClassSpec{{Name: "b", MaxQueueDepth: 2}}}
	s := NewScheduler[int](spec, 100, fixedClock(&now))
	ctx := context.Background()
	s.Push(ctx, 0, 0, 1)
	s.Push(ctx, 0, 0, 2)
	shed, err := s.Push(ctx, 0, 0, 3)
	if err != nil || shed == nil || shed.Reason != ReasonQueueFull {
		t.Fatalf("shed=%v err=%v", shed, err)
	}
}

func TestSchedulerBrownoutShedsLowClasses(t *testing.T) {
	now := 0.0
	s := NewScheduler[int](DefaultSpec(), 100, fixedClock(&now))
	ctx := context.Background()
	s.SetBrownout(1) // sheds background (weight 1)
	bg, _ := s.ClassIndex(Background)
	shed, _ := s.Push(ctx, bg, 0, 1)
	if shed == nil || shed.Reason != ReasonBrownout {
		t.Fatalf("background not shed: %+v", shed)
	}
	ia, _ := s.ClassIndex(Interactive)
	if shed, _ := s.Push(ctx, ia, 0, 2); shed != nil {
		t.Fatalf("interactive shed at level 1: %+v", shed)
	}
	s.SetBrownout(2) // + batch
	ba, _ := s.ClassIndex(Batch)
	if shed, _ := s.Push(ctx, ba, 0, 3); shed == nil {
		t.Fatal("batch not shed at level 2")
	}
	// The top class is never browned out, whatever the level.
	s.SetBrownout(99)
	if got := s.Brownout(); got != 2 {
		t.Fatalf("brownout clamp = %d, want 2", got)
	}
	if shed, _ := s.Push(ctx, ia, 0, 4); shed != nil {
		t.Fatalf("interactive shed at max level: %+v", shed)
	}
}

func TestSchedulerBackpressureBlocksAndCtxCancels(t *testing.T) {
	now := 0.0
	s := NewScheduler[int](Spec{}, 1, fixedClock(&now))
	ctx := context.Background()
	s.Push(ctx, 0, 0, 1) // fills the depth-1 queue
	cctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Push(cctx, 0, 0, 2)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("push did not block: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("blocked push err = %v", err)
	}
	// A drain unblocks the next waiter.
	go func() {
		_, err := s.Push(context.Background(), 0, 0, 3)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if v, _, _ := s.Pop(); v != 1 {
		t.Fatalf("pop = %d", v)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("unblocked push err = %v", err)
	}
}

func TestSchedulerCloseDrainsThenStops(t *testing.T) {
	now := 0.0
	s := NewScheduler[int](Spec{}, 10, fixedClock(&now))
	ctx := context.Background()
	s.Push(ctx, 0, 0, 1)
	s.Push(ctx, 0, 0, 2)
	s.Close()
	if _, err := s.Push(ctx, 0, 0, 3); err != ErrSchedulerClosed {
		t.Fatalf("push after close: %v", err)
	}
	for want := 1; want <= 2; want++ {
		v, _, ok := s.Pop()
		if !ok || v != want {
			t.Fatalf("drain pop = %d ok=%v", v, ok)
		}
	}
	if _, _, ok := s.Pop(); ok {
		t.Fatal("pop after drain should report closed")
	}
}

func TestSchedulerConfigureMigratesItemsAndCounters(t *testing.T) {
	now := 0.0
	s := NewScheduler[string](Spec{Classes: []ClassSpec{{Name: "a"}, {Name: "gone"}}}, 100, fixedClock(&now))
	ctx := context.Background()
	s.Push(ctx, 0, 0, "a1")
	s.Push(ctx, 1, 0, "g1")
	s.Configure(Spec{Classes: []ClassSpec{{Name: "a", Weight: 2}, {Name: "new"}}})
	st := s.Stats()
	if st.Depth != 2 {
		t.Fatalf("depth after reconfigure = %d", st.Depth)
	}
	if st.Classes[0].Enqueued != 1 {
		t.Fatalf("class a counters lost: %+v", st.Classes[0])
	}
	// Both items (the orphan folded into the default class) still pop.
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		v, _, ok := s.Pop()
		if !ok {
			t.Fatal("pop failed")
		}
		seen[v] = true
	}
	if !seen["a1"] || !seen["g1"] {
		t.Fatalf("items lost in migration: %v", seen)
	}
}

func TestSchedulerStatsAndPressure(t *testing.T) {
	now := 0.0
	spec := Spec{Classes: []ClassSpec{{Name: "x", MaxQueueDepth: 1}}}
	s := NewScheduler[int](spec, 100, fixedClock(&now))
	ctx := context.Background()
	s.Push(ctx, 0, 0, 1)
	s.Push(ctx, 0, 0, 2) // queue_full shed
	now = 0.5
	s.Pop()
	s.ObserveService(0.25)
	st := s.Stats()
	if st.Enqueued != 1 || st.Dequeued != 1 || st.Shed != 1 || st.HighWater != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Classes[0].Shed[ReasonQueueFull] != 1 {
		t.Fatalf("class shed = %+v", st.Classes[0].Shed)
	}
	if st.EWMAService != 0.25 {
		t.Fatalf("ewma = %v", st.EWMAService)
	}
	p := s.Pressure()
	if p.Shed != 1 || p.Enqueued != 1 {
		t.Fatalf("pressure = %+v", p)
	}
	if math.Abs(p.WaitP99-0.5) > 1e-9 {
		t.Fatalf("wait p99 = %v, want 0.5", p.WaitP99)
	}
}

func TestSchedulerTryPopNeverBlocks(t *testing.T) {
	now := 0.0
	s := NewScheduler[int](Spec{}, 10, fixedClock(&now))
	if _, _, ok := s.TryPop(); ok {
		t.Fatal("TryPop on an empty scheduler reported an item")
	}
	ctx := context.Background()
	s.Push(ctx, 0, 0, 1)
	v, res, ok := s.TryPop()
	if !ok || res.Shed || v != 1 {
		t.Fatalf("TryPop → %d (shed=%v ok=%v), want 1", v, res.Shed, ok)
	}
	s.Push(ctx, 0, 2, 2) // deadline 2
	now = 5              // ... which is now expired
	v, res, ok = s.TryPop()
	if !ok || !res.Shed || v != 2 || res.Info.Reason != ReasonDeadline {
		t.Fatalf("TryPop → %d (shed=%v reason=%q), want expired item 2", v, res.Shed, res.Info.Reason)
	}
	if _, _, ok := s.TryPop(); ok {
		t.Fatal("TryPop on a drained scheduler reported an item")
	}
	if st := s.Stats(); st.Shed != 1 || st.Dequeued != 1 {
		t.Fatalf("stats after TryPops: shed=%d dequeued=%d, want 1/1", st.Shed, st.Dequeued)
	}
}
