package qos

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
)

// ErrSchedulerClosed is returned by Push after Close.
var ErrSchedulerClosed = errors.New("qos: scheduler closed")

// ShedInfo reports one refused admission: the caller owns turning it into
// a typed error and an event — the scheduler only decides and counts.
type ShedInfo struct {
	Class         string  // resolved class name
	Reason        string  // ReasonDeadline | ReasonQueueFull | ReasonBrownout
	QueueDepth    int     // total scheduler depth at decision time
	EstimatedWait float64 // EWMA × depth estimate, seconds (deadline sheds)
}

// PopResult describes one dequeue.
type PopResult struct {
	// Shed is true when the item's deadline expired while queued: the
	// payload must be failed by the caller, not processed.
	Shed bool
	// Info is populated when Shed is true.
	Info ShedInfo
	// Class is the item's class name.
	Class string
	// Wait is the item's queue wait in seconds (non-shed pops).
	Wait float64
}

// schedItem is one queued entry. key is the EDF ordering key: the item's
// deadline, or +Inf for deadline-less items, tie-broken by seq (FIFO).
type schedItem[T any] struct {
	payload  T
	key      float64
	deadline float64
	at       float64 // enqueue time
	seq      uint64
}

// classQueue is one class's EDF heap plus its counters.
type classQueue[T any] struct {
	spec  ClassSpec
	items []schedItem[T]
	wfq   int // smooth-WRR current credit

	highWater int
	enqueued  uint64
	dequeued  uint64
	shed      [numReasons]uint64
}

func (c *classQueue[T]) less(i, j int) bool {
	if c.items[i].key != c.items[j].key {
		return c.items[i].key < c.items[j].key
	}
	return c.items[i].seq < c.items[j].seq
}

func (c *classQueue[T]) push(it schedItem[T]) {
	c.items = append(c.items, it)
	i := len(c.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.items[i], c.items[parent] = c.items[parent], c.items[i]
		i = parent
	}
	if len(c.items) > c.highWater {
		c.highWater = len(c.items)
	}
}

func (c *classQueue[T]) pop() schedItem[T] {
	top := c.items[0]
	n := len(c.items) - 1
	c.items[0] = c.items[n]
	var zero schedItem[T]
	c.items[n] = zero // release payload references
	c.items = c.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.less(l, smallest) {
			smallest = l
		}
		if r < n && c.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		c.items[i], c.items[smallest] = c.items[smallest], c.items[i]
		i = smallest
	}
	return top
}

// waitRingSize is the recent-queue-wait sample window behind the p99
// pressure signal.
const waitRingSize = 256

// defaultEWMAAlpha is the service-time EWMA step per observed mediation.
const defaultEWMAAlpha = 0.2

// Scheduler is one shard's class-aware submission queue, replacing the
// FIFO channel: weighted fair pick across class queues (strict-priority
// classes first), earliest-deadline-first within a class, deadline-based
// shedding at admission and at dequeue, and counters for everything.
//
// Push blocks only for classes without an explicit depth bound (the
// historical backpressure contract); every other refusal returns a typed
// ShedInfo immediately. Safe for concurrent use; Pop is designed for one
// dedicated consumer goroutine (the shard loop).
type Scheduler[T any] struct {
	mu       sync.Mutex
	notEmpty *sync.Cond

	spec         Spec
	classes      []*classQueue[T]
	byName       map[string]int
	defaultIdx   int
	shedFrom     []int // shedOrder of spec.Classes
	brownout     int
	defaultDepth int // blocking bound for classes without MaxQueueDepth

	now    func() float64
	seq    uint64
	depth  int
	closed bool

	ewma float64 // observed mediation service seconds

	waits   [waitRingSize]float64
	waitIdx int
	waitN   int

	// space is closed and replaced on each dequeue while blocked pushers
	// wait; closedCh is closed by Close.
	space    chan struct{}
	waiters  int
	closedCh chan struct{}
}

// NewScheduler builds a shard scheduler: spec declares the class table
// (empty means one default class — the pre-QoS FIFO), defaultDepth is the
// blocking bound for classes without explicit MaxQueueDepth, now the
// engine clock.
func NewScheduler[T any](spec Spec, defaultDepth int, now func() float64) *Scheduler[T] {
	if defaultDepth < 1 {
		defaultDepth = 1024
	}
	s := &Scheduler[T]{
		defaultDepth: defaultDepth,
		now:          now,
		space:        make(chan struct{}),
		closedCh:     make(chan struct{}),
	}
	s.notEmpty = sync.NewCond(&s.mu)
	s.installLocked(spec.Normalized())
	return s
}

// installLocked (re)builds the class table, migrating queued items to the
// new table by class name (unmatched classes fold into the default).
func (s *Scheduler[T]) installLocked(spec Spec) {
	if len(spec.Classes) == 0 {
		spec.Classes = []ClassSpec{{Name: "", Weight: 1}}
		spec.DefaultClass = ""
	}
	old := s.classes
	s.spec = spec
	s.classes = make([]*classQueue[T], len(spec.Classes))
	s.byName = make(map[string]int, len(spec.Classes))
	for i, c := range spec.Classes {
		s.classes[i] = &classQueue[T]{spec: c}
		s.byName[c.Name] = i
	}
	s.defaultIdx = 0
	if i, ok := s.byName[spec.DefaultClass]; ok {
		s.defaultIdx = i
	}
	s.shedFrom = shedOrder(spec.Classes)
	if s.brownout > len(spec.Classes)-1 {
		s.brownout = len(spec.Classes) - 1
	}
	// Migrate queued items, preserving (key, seq) order per class; carry
	// the old counters over by name so reconfiguration never zeroes the
	// ledger of a surviving class.
	for _, oc := range old {
		ni, ok := s.byName[oc.spec.Name]
		if !ok {
			ni = s.defaultIdx
		} else {
			nc := s.classes[ni]
			nc.highWater = oc.highWater
			nc.enqueued = oc.enqueued
			nc.dequeued = oc.dequeued
			nc.shed = oc.shed
		}
		for _, it := range oc.items {
			s.classes[ni].push(it)
		}
	}
}

// Configure hot-swaps the class table; queued items migrate by class name.
func (s *Scheduler[T]) Configure(spec Spec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installLocked(spec.Normalized())
	s.notEmpty.Broadcast()
	s.signalSpaceLocked()
}

// Spec returns the scheduler's current normalized spec.
func (s *Scheduler[T]) Spec() Spec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spec
}

// ClassIndex resolves a class name to its table index; empty names resolve
// to the default class, unknown names to (default, false).
func (s *Scheduler[T]) ClassIndex(name string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		return s.defaultIdx, true
	}
	if i, ok := s.byName[name]; ok {
		return i, true
	}
	return s.defaultIdx, false
}

// SetBrownout sets the shed-widening level: level L immediately sheds
// admissions to the L most-sheddable classes (ascending weight,
// non-priority first). Clamped to [0, classes-1] so the top class always
// admits.
func (s *Scheduler[T]) SetBrownout(level int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if level < 0 {
		level = 0
	}
	if max := len(s.classes) - 1; level > max {
		level = max
	}
	s.brownout = level
}

// Brownout returns the current shed-widening level.
func (s *Scheduler[T]) Brownout() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.brownout
}

// browned reports whether the class index is currently shed by brownout.
func (s *Scheduler[T]) brownedLocked(class int) bool {
	for i := 0; i < s.brownout && i < len(s.shedFrom); i++ {
		if s.shedFrom[i] == class {
			return true
		}
	}
	return false
}

// Push admits one item to the class queue. A non-nil ShedInfo means the
// item was refused (deadline infeasible, class queue full, or brownout) —
// the caller owns failing it. The error is non-nil only for a done ctx
// while blocked on backpressure, or a closed scheduler.
func (s *Scheduler[T]) Push(ctx context.Context, class int, deadline float64, payload T) (*ShedInfo, error) {
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return nil, ErrSchedulerClosed
		}
		if class < 0 || class >= len(s.classes) {
			class = s.defaultIdx
		}
		cq := s.classes[class]
		if s.brownedLocked(class) {
			cq.shed[reasonBrownoutIdx]++
			info := &ShedInfo{Class: cq.spec.Name, Reason: ReasonBrownout, QueueDepth: s.depth}
			s.mu.Unlock()
			return info, nil
		}
		if deadline > 0 && s.ewma > 0 {
			est := s.ewma * float64(s.depth+1)
			if s.now()+est > deadline {
				cq.shed[reasonDeadlineIdx]++
				info := &ShedInfo{Class: cq.spec.Name, Reason: ReasonDeadline, QueueDepth: s.depth, EstimatedWait: est}
				s.mu.Unlock()
				return info, nil
			}
		}
		if cq.spec.MaxQueueDepth > 0 {
			if len(cq.items) >= cq.spec.MaxQueueDepth {
				cq.shed[reasonQueueFullIdx]++
				info := &ShedInfo{Class: cq.spec.Name, Reason: ReasonQueueFull, QueueDepth: s.depth}
				s.mu.Unlock()
				return info, nil
			}
		} else if len(cq.items) >= s.defaultDepth {
			// Historical backpressure: block until the shard drains, the
			// ctx is done, or the scheduler closes.
			ch := s.space
			s.waiters++
			s.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				s.mu.Lock()
				s.waiters--
				s.mu.Unlock()
				return nil, ctx.Err()
			case <-s.closedCh:
				s.mu.Lock()
				s.waiters--
				s.mu.Unlock()
				return nil, ErrSchedulerClosed
			}
			s.mu.Lock()
			s.waiters--
			continue
		}
		key := deadline
		if key <= 0 {
			key = math.Inf(1)
		}
		cq.push(schedItem[T]{payload: payload, key: key, deadline: deadline, at: s.now(), seq: s.seq})
		s.seq++
		cq.enqueued++
		s.depth++
		s.notEmpty.Signal()
		s.mu.Unlock()
		return nil, nil
	}
}

// pickLocked chooses the next class to serve: weighted fair (smooth WRR)
// over non-empty priority classes when any exist, else over the rest.
// Deterministic: iteration in table order, ties to the lower index.
func (s *Scheduler[T]) pickLocked() int {
	best, total := -1, 0
	for pass := 0; pass < 2 && best == -1; pass++ {
		wantPriority := pass == 0
		for i, cq := range s.classes {
			if len(cq.items) == 0 || cq.spec.Priority != wantPriority {
				continue
			}
			cq.wfq += cq.spec.Weight
			total += cq.spec.Weight
			if best == -1 || cq.wfq > s.classes[best].wfq {
				best = i
			}
		}
	}
	s.classes[best].wfq -= total
	return best
}

// Pop dequeues the next item per the scheduling discipline. ok=false means
// the scheduler is closed AND drained. A result with Shed=true delivers a
// payload whose deadline expired while queued: the caller must fail it
// (typed error + event), never process it.
func (s *Scheduler[T]) Pop() (payload T, res PopResult, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.depth == 0 {
			if s.closed {
				var zero T
				return zero, PopResult{}, false
			}
			s.notEmpty.Wait()
			continue
		}
		payload, res = s.popLocked()
		return payload, res, true
	}
}

// TryPop is Pop's non-blocking form: ok=false means the scheduler is empty
// right now (or closed and drained) — it never parks. Single-threaded
// drivers such as the lab's virtual-clock mediation station use it from an
// event loop that must not block.
func (s *Scheduler[T]) TryPop() (payload T, res PopResult, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.depth == 0 {
		var zero T
		return zero, PopResult{}, false
	}
	payload, res = s.popLocked()
	return payload, res, true
}

// popLocked dequeues one item (depth > 0 required): the shared body of Pop
// and TryPop.
func (s *Scheduler[T]) popLocked() (T, PopResult) {
	ci := s.pickLocked()
	cq := s.classes[ci]
	it := cq.pop()
	s.depth--
	s.signalSpaceLocked()
	now := s.now()
	if it.deadline > 0 && now > it.deadline {
		cq.shed[reasonDeadlineIdx]++
		return it.payload, PopResult{
			Shed:  true,
			Class: cq.spec.Name,
			Info: ShedInfo{
				Class:         cq.spec.Name,
				Reason:        ReasonDeadline,
				QueueDepth:    s.depth,
				EstimatedWait: now - it.at,
			},
		}
	}
	cq.dequeued++
	wait := now - it.at
	s.waits[s.waitIdx] = wait
	s.waitIdx = (s.waitIdx + 1) % waitRingSize
	if s.waitN < waitRingSize {
		s.waitN++
	}
	return it.payload, PopResult{Class: cq.spec.Name, Wait: wait}
}

// signalSpaceLocked releases blocked pushers after a dequeue (or close);
// the channel rotates only when someone is actually waiting, keeping the
// hot path allocation-free.
func (s *Scheduler[T]) signalSpaceLocked() {
	if s.waiters > 0 {
		close(s.space)
		s.space = make(chan struct{})
	}
}

// ObserveService folds one mediation service time into the shard's EWMA.
func (s *Scheduler[T]) ObserveService(dt float64) {
	if dt < 0 {
		return
	}
	s.mu.Lock()
	if s.ewma == 0 {
		s.ewma = dt
	} else {
		s.ewma += defaultEWMAAlpha * (dt - s.ewma)
	}
	s.mu.Unlock()
}

// EstimatedWait returns the current admission wait estimate (EWMA × queue
// depth), the deadline-shed yardstick.
func (s *Scheduler[T]) EstimatedWait() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ewma * float64(s.depth+1)
}

// Close wakes the consumer and all blocked pushers. Pop drains what is
// queued and then reports ok=false; Push fails with ErrSchedulerClosed.
// Idempotent.
func (s *Scheduler[T]) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.closedCh)
	s.notEmpty.Broadcast()
	s.mu.Unlock()
}

// ClassStats is one class's ledger.
type ClassStats struct {
	Name      string
	Depth     int
	HighWater int
	Enqueued  uint64
	Dequeued  uint64
	// Shed counts by reason ("deadline", "queue_full", "brownout").
	Shed map[string]uint64
}

// Stats is a scheduler snapshot.
type Stats struct {
	Classes     []ClassStats
	Depth       int
	HighWater   int // sum of per-class high-water marks
	Enqueued    uint64
	Dequeued    uint64
	Shed        uint64
	EWMAService float64
	Brownout    int
}

// Stats snapshots every counter.
func (s *Scheduler[T]) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Classes:     make([]ClassStats, len(s.classes)),
		Depth:       s.depth,
		EWMAService: s.ewma,
		Brownout:    s.brownout,
	}
	for i, cq := range s.classes {
		cs := ClassStats{
			Name:      cq.spec.Name,
			Depth:     len(cq.items),
			HighWater: cq.highWater,
			Enqueued:  cq.enqueued,
			Dequeued:  cq.dequeued,
			Shed:      make(map[string]uint64, numReasons),
		}
		var shed uint64
		for r := 0; r < numReasons; r++ {
			if cq.shed[r] > 0 {
				cs.Shed[Reasons[r]] = cq.shed[r]
			}
			shed += cq.shed[r]
		}
		st.Classes[i] = cs
		st.HighWater += cq.highWater
		st.Enqueued += cq.enqueued
		st.Dequeued += cq.dequeued
		st.Shed += shed
	}
	return st
}

// Pressure is the brownout controller's sensor reading.
type Pressure struct {
	// Enqueued and Shed are cumulative; the controller differences
	// successive readings for rates.
	Enqueued uint64
	Shed     uint64
	// WaitP99 is the p99 queue wait over the most recent dequeues
	// (waitRingSize samples), in seconds.
	WaitP99 float64
	// Depth is the instantaneous total queue depth.
	Depth int
}

// Pressure snapshots the overload signals.
func (s *Scheduler[T]) Pressure() Pressure {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := Pressure{Depth: s.depth}
	for _, cq := range s.classes {
		p.Enqueued += cq.enqueued
		for r := 0; r < numReasons; r++ {
			p.Shed += cq.shed[r]
		}
	}
	if s.waitN > 0 {
		buf := make([]float64, s.waitN)
		copy(buf, s.waits[:s.waitN])
		sort.Float64s(buf)
		p.WaitP99 = buf[int(0.99*float64(len(buf)-1))]
	}
	return p
}
