// Package core implements the paper's primary contribution: the SbQA
// (Satisfaction-based Query Allocation) process. For each incoming query q
// with candidate set P_q, the mediator:
//
//  1. runs the KnBest strategy — draws k providers of P_q at random, keeps
//     the kn least utilized (set Kn);
//  2. runs SQLB — collects, in one batched intention round over Kn, the
//     consumer's intention CI_q[p] toward every p ∈ Kn and every p ∈ Kn's
//     intention PI_q[p] to perform q (the environment owns transport,
//     concurrency, per-participant deadlines, and imputation for silent
//     participants), scores each p with Definition 3 under the balance ω of
//     Equation 2 (ω adapts to the consumer's and provider's long-run
//     satisfactions), and ranks Kn best-first;
//  3. allocates q to the min(q.n, kn) best-ranked providers and sends the
//     mediation result to the consumer and to all providers in Kn.
//
// The result is an allocator that trades performance for participants'
// interests *only as much as fairness requires*: satisfied participants
// gradually lose influence, dissatisfied ones gain it.
package core

import (
	"context"
	"fmt"

	"sbqa/internal/alloc"
	"sbqa/internal/knbest"
	"sbqa/internal/model"
	"sbqa/internal/score"
	"sbqa/internal/stats"
)

// Config assembles an SbQA allocator.
type Config struct {
	// KnBest holds the two-stage selection parameters. Zero values fall
	// back to knbest.DefaultParams.
	KnBest knbest.Params

	// Omega selects the balance rule: nil — the default — selects the
	// satisfaction-adaptive Equation 2; a non-nil value in [0, 1] fixes ω
	// (Scenario 6 tunes this per application; the paper notes ω ≈ 0 suits
	// cooperative providers where only result quality matters). Use
	// FixedOmega to build the pointer inline.
	Omega *float64

	// Epsilon is the ε of the score's negative branch; values <= 0 mean
	// score.DefaultEpsilon.
	Epsilon float64

	// Seed seeds the KnBest sampling stream.
	Seed uint64
}

// DefaultConfig returns the demo defaults: KnBest(20, 10), adaptive ω, ε = 1.
func DefaultConfig() Config {
	return Config{KnBest: knbest.DefaultParams(), Epsilon: score.DefaultEpsilon, Seed: 1}
}

// FixedOmega returns a pointer to v for Config.Omega.
func FixedOmega(v float64) *float64 { return &v }

// SbQA is the satisfaction-based query allocator. It implements
// alloc.Allocator. Not safe for concurrent use (the live engine serializes
// mediations).
type SbQA struct {
	selector *knbest.Selector
	scorer   *score.Scorer
}

// New builds an SbQA allocator from cfg.
func New(cfg Config) (*SbQA, error) {
	if cfg.KnBest == (knbest.Params{}) {
		cfg.KnBest = knbest.DefaultParams()
	}
	if err := cfg.KnBest.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var scorer *score.Scorer
	if cfg.Omega != nil {
		scorer = score.NewFixedScorer(*cfg.Omega)
	} else {
		scorer = score.NewScorer()
	}
	if cfg.Epsilon > 0 {
		scorer.Epsilon = cfg.Epsilon
	}
	return &SbQA{
		selector: knbest.NewSelector(cfg.KnBest, stats.NewRNG(cfg.Seed)),
		scorer:   scorer,
	}, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error.
func MustNew(cfg Config) *SbQA {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements alloc.Allocator.
func (s *SbQA) Name() string {
	if s.scorer.Adaptive() {
		return "SbQA"
	}
	return fmt.Sprintf("SbQA(ω=%g)", s.scorer.FixedOmega)
}

// Interactive reports that SbQA contacts providers during mediation (the
// intention-collection round); the simulation charges it a network round
// trip per query.
func (s *SbQA) Interactive() bool { return true }

// Params returns the current KnBest parameters.
func (s *SbQA) Params() knbest.Params { return s.selector.Params() }

// SetParams retunes the KnBest stage at run time (Scenario 6).
func (s *SbQA) SetParams(p knbest.Params) { s.selector.SetParams(p) }

// Scorer exposes the scorer for run-time retuning (Scenario 6 varies ω).
func (s *SbQA) Scorer() *score.Scorer { return s.scorer }

// Allocate implements alloc.Allocator: one full SbQA mediation.
func (s *SbQA) Allocate(ctx context.Context, env alloc.Env, q model.Query, candidates []model.ProviderSnapshot) (*model.Allocation, error) {
	if len(candidates) == 0 {
		return nil, nil
	}

	// Stage 1+2: KnBest keeps the kn least-utilized of k random candidates.
	kn := s.selector.Select(candidates)

	// Stage 3: SQLB — one batched intention round over Kn, then score and
	// rank from the returned set. No participant is contacted mid-rank: the
	// environment has already fanned the batch out (with deadlines and
	// imputation for silent participants) by the time scoring starts.
	set, err := env.Intentions(ctx, q, kn)
	if err != nil {
		return nil, fmt.Errorf("core: intention collection: %w", err)
	}
	if err := alloc.CheckBatch(set.Len(), len(kn), "intention"); err != nil {
		return nil, err
	}
	satC := env.ConsumerSatisfaction(q.Consumer)
	satP := env.ProviderSatisfactions(kn)
	if err := alloc.CheckBatch(len(satP), len(kn), "satisfaction"); err != nil {
		return nil, err
	}
	scored := make([]score.Candidate, len(kn))
	for i, snap := range kn {
		scored[i] = score.Candidate{
			Provider: snap.ID,
			PI:       set.PI[i],
			CI:       set.CI[i],
			SatC:     satC,
			SatP:     satP[i],
		}
	}
	ranked := s.scorer.Rank(scored)

	n := q.N
	if n < 1 {
		n = 1
	}
	if n > len(ranked) {
		n = len(ranked)
	}

	a := &model.Allocation{
		Query:              q,
		Selected:           make([]model.ProviderID, 0, n),
		Proposed:           make([]model.ProviderID, 0, len(ranked)),
		ConsumerIntentions: make([]model.Intention, 0, len(ranked)),
		ProviderIntentions: make([]model.Intention, 0, len(ranked)),
		Scores:             make([]float64, 0, len(ranked)),
	}
	for i, r := range ranked {
		a.Proposed = append(a.Proposed, r.Provider)
		a.ConsumerIntentions = append(a.ConsumerIntentions, r.CI)
		a.ProviderIntentions = append(a.ProviderIntentions, r.PI)
		a.Scores = append(a.Scores, r.Score)
		if i < n {
			a.Selected = append(a.Selected, r.Provider)
		}
	}
	return a, nil
}

var _ alloc.Allocator = (*SbQA)(nil)
