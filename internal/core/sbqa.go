// Package core implements the paper's primary contribution: the SbQA
// (Satisfaction-based Query Allocation) process. For each incoming query q
// with candidate set P_q, the mediator:
//
//  1. runs the KnBest strategy — draws k providers of P_q at random, keeps
//     the kn least utilized (set Kn);
//  2. runs SQLB — collects, in one batched intention round over Kn, the
//     consumer's intention CI_q[p] toward every p ∈ Kn and every p ∈ Kn's
//     intention PI_q[p] to perform q (the environment owns transport,
//     concurrency, per-participant deadlines, and imputation for silent
//     participants), scores each p with Definition 3 under the balance ω of
//     Equation 2 (ω adapts to the consumer's and provider's long-run
//     satisfactions), and ranks Kn best-first;
//  3. allocates q to the min(q.n, kn) best-ranked providers and sends the
//     mediation result to the consumer and to all providers in Kn.
//
// The result is an allocator that trades performance for participants'
// interests *only as much as fairness requires*: satisfied participants
// gradually lose influence, dissatisfied ones gain it.
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"sbqa/internal/alloc"
	"sbqa/internal/knbest"
	"sbqa/internal/model"
	"sbqa/internal/score"
	"sbqa/internal/stats"
)

// Config assembles an SbQA allocator.
type Config struct {
	// KnBest holds the two-stage selection parameters. Zero values fall
	// back to knbest.DefaultParams.
	KnBest knbest.Params

	// Omega selects the balance rule: nil — the default — selects the
	// satisfaction-adaptive Equation 2; a non-nil value in [0, 1] fixes ω
	// (Scenario 6 tunes this per application; the paper notes ω ≈ 0 suits
	// cooperative providers where only result quality matters). Use
	// FixedOmega to build the pointer inline.
	Omega *float64

	// Epsilon is the ε of the score's negative branch; values <= 0 mean
	// score.DefaultEpsilon.
	Epsilon float64

	// Seed seeds the KnBest sampling stream.
	Seed uint64
}

// DefaultConfig returns the demo defaults: KnBest(20, 10), adaptive ω, ε = 1.
func DefaultConfig() Config {
	return Config{KnBest: knbest.DefaultParams(), Epsilon: score.DefaultEpsilon, Seed: 1}
}

// FixedOmega returns a pointer to v for Config.Omega.
func FixedOmega(v float64) *float64 { return &v }

// SbQA is the satisfaction-based query allocator. It implements
// alloc.Allocator. Allocate is not safe for concurrent use (the live engine
// serializes mediations per shard), but the allocator's tunables — the
// KnBest parameters and the scoring rule — live in an atomic snapshot that
// Allocate loads once per mediation: SetParams and SetScoring may be called
// from any goroutine while mediations are in flight (Scenario 6 retuning,
// the policy tuner), and each mediation sees one coherent parameter set.
type SbQA struct {
	selector *knbest.Selector // RNG + scratch: owned by the mediating goroutine
	tune     atomic.Pointer[tuning]
	scr      sbqaScratch // flat scoring columns: owned by the mediating goroutine
}

// sbqaScratch holds the per-allocator flat scoring columns, reused across
// mediations so Allocate's scoring stage allocates nothing. Position-aligned
// with the Kn set of the current mediation; contents are dead once Allocate
// returns (the allocation owns copies of everything it keeps).
type sbqaScratch struct {
	ids    []model.ProviderID
	satP   []float64
	omega  []float64
	scores []float64
	order  []int
	ranker score.FlatRanker
}

// grow resizes every column to m, reallocating only when capacity is
// exceeded.
func (s *sbqaScratch) grow(m int) {
	if cap(s.ids) < m {
		s.ids = make([]model.ProviderID, m)
		s.satP = make([]float64, m)
		s.omega = make([]float64, m)
		s.scores = make([]float64, m)
		s.order = make([]int, m)
	}
	s.ids = s.ids[:m]
	s.satP = s.satP[:m]
	s.omega = s.omega[:m]
	s.scores = s.scores[:m]
	s.order = s.order[:m]
}

// tuning is one immutable parameter snapshot: the KnBest stages plus the
// scoring rule (by value — Rank does not mutate the scorer).
type tuning struct {
	params knbest.Params
	scorer score.Scorer
}

// New builds an SbQA allocator from cfg.
func New(cfg Config) (*SbQA, error) {
	if cfg.KnBest == (knbest.Params{}) {
		cfg.KnBest = knbest.DefaultParams()
	}
	if err := cfg.KnBest.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var scorer *score.Scorer
	if cfg.Omega != nil {
		scorer = score.NewFixedScorer(*cfg.Omega)
	} else {
		scorer = score.NewScorer()
	}
	if cfg.Epsilon > 0 {
		scorer.Epsilon = cfg.Epsilon
	}
	s := &SbQA{selector: knbest.NewSelector(cfg.KnBest, stats.NewRNG(cfg.Seed))}
	s.tune.Store(&tuning{params: cfg.KnBest, scorer: *scorer})
	return s, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error.
func MustNew(cfg Config) *SbQA {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements alloc.Allocator.
func (s *SbQA) Name() string {
	sc := s.tune.Load().scorer
	if sc.Adaptive() {
		return "SbQA"
	}
	return fmt.Sprintf("SbQA(ω=%g)", sc.FixedOmega)
}

// Interactive reports that SbQA contacts providers during mediation (the
// intention-collection round); the simulation charges it a network round
// trip per query.
func (s *SbQA) Interactive() bool { return true }

// Params returns the current KnBest parameters.
func (s *SbQA) Params() knbest.Params { return s.tune.Load().params }

// SetParams retunes the KnBest stage at run time (Scenario 6, the policy
// tuner). Safe to call from any goroutine, including while a mediation is
// in flight on another — the in-flight mediation finishes under the
// parameters it loaded, the next one sees the new set.
func (s *SbQA) SetParams(p knbest.Params) {
	for {
		old := s.tune.Load()
		next := &tuning{params: p, scorer: old.scorer}
		if s.tune.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetScoring retunes the scoring rule at run time: a nil omega selects the
// satisfaction-adaptive Equation 2, a non-nil value pins ω (clamped into
// [0, 1], matching NewFixedScorer); epsilon <= 0 keeps the current ε.
// Concurrency-safe like SetParams.
func (s *SbQA) SetScoring(omega *float64, epsilon float64) {
	for {
		old := s.tune.Load()
		sc := old.scorer
		if omega != nil {
			sc = *score.NewFixedScorer(*omega)
			sc.Epsilon = old.scorer.Epsilon
		} else {
			sc.FixedOmega = -1
		}
		if epsilon > 0 {
			sc.Epsilon = epsilon
		}
		next := &tuning{params: old.params, scorer: sc}
		if s.tune.CompareAndSwap(old, next) {
			return
		}
	}
}

// Scorer returns a copy of the current scoring rule for inspection.
//
// Deprecated: the historical retuning path mutated the returned scorer in
// place, which raced with in-flight mediations. The returned value is now a
// snapshot — mutating it has no effect on the allocator. Retune through
// SetScoring (or swap policies via the engine's Reconfigure) instead.
func (s *SbQA) Scorer() *score.Scorer {
	sc := s.tune.Load().scorer
	return &sc
}

// ExportState implements alloc.Stateful: the KnBest sampling stream's
// position. Like Allocate it must run on the goroutine that owns the
// allocator (the engine exports under the shard lock); the tunables
// (SetParams/SetScoring) are NOT part of the blob — they belong to the
// policy spec, which the durability layer persists separately.
func (s *SbQA) ExportState() []byte { return alloc.MarshalRNGState(s.selector.RNGState()) }

// RestoreState implements alloc.Stateful, resuming the KnBest sampling
// stream so a restored engine draws the same stage-1 samples an
// uninterrupted run would have.
func (s *SbQA) RestoreState(state []byte) error {
	rng, err := alloc.UnmarshalRNGState(state)
	if err != nil {
		return err
	}
	s.selector.RestoreRNGState(rng)
	return nil
}

// Allocate implements alloc.Allocator: one full SbQA mediation.
func (s *SbQA) Allocate(ctx context.Context, env alloc.Env, q model.Query, candidates []model.ProviderSnapshot) (*model.Allocation, error) {
	if len(candidates) == 0 {
		return nil, nil
	}

	// One coherent tunable snapshot per mediation: a concurrent retune
	// (SetParams/SetScoring) applies from the next mediation on.
	tn := s.tune.Load()

	// Stage 1+2: KnBest keeps the kn least-utilized of k random candidates.
	kn := s.selector.SelectWith(tn.params, candidates)

	// Stage 3: SQLB — one batched intention round over Kn, then score and
	// rank from the returned set. No participant is contacted mid-rank: the
	// environment has already fanned the batch out (with deadlines and
	// imputation for silent participants) by the time scoring starts.
	set, err := env.Intentions(ctx, q, kn)
	if err != nil {
		return nil, fmt.Errorf("core: intention collection: %w", err)
	}
	if err := alloc.CheckBatch(set.Len(), len(kn), "intention"); err != nil {
		return nil, err
	}
	satC := env.ConsumerSatisfaction(q.Consumer)
	m := len(kn)
	s.scr.grow(m)
	var satP []float64
	if ap, ok := env.(alloc.SatisfactionAppender); ok {
		satP = ap.AppendProviderSatisfactions(kn, s.scr.satP[:0])
	} else {
		satP = env.ProviderSatisfactions(kn)
	}
	if err := alloc.CheckBatch(len(satP), m, "satisfaction"); err != nil {
		return nil, err
	}

	// Score over flat parallel columns borrowed from the environment's batch
	// buffers — no per-provider structs — then rank a position permutation.
	// Same math, same stable comparator (score desc, ID asc) as the
	// historical struct-based Rank, so the order is byte-identical.
	for i, snap := range kn {
		s.scr.ids[i] = snap.ID
	}
	tn.scorer.ScoreInto(score.View{
		IDs:  s.scr.ids,
		PI:   set.PI,
		CI:   set.CI,
		SatC: satC,
		SatP: satP,
	}, s.scr.omega, s.scr.scores)
	s.scr.ranker.Rank(s.scr.scores, s.scr.ids, s.scr.order)

	n := q.N
	if n < 1 {
		n = 1
	}
	if n > m {
		n = m
	}

	// The allocation owns its vectors (the scratch is reused next
	// mediation); three backing arrays cover all five, with capped subslices
	// so later compaction of one cannot clobber its neighbor.
	ids := make([]model.ProviderID, m+n)
	ints := make([]model.Intention, 2*m)
	a := &model.Allocation{
		Query:              q,
		Proposed:           ids[:m:m],
		Selected:           ids[m : m+n : m+n],
		ConsumerIntentions: ints[:m:m],
		ProviderIntentions: ints[m : 2*m : 2*m],
		Scores:             make([]float64, m),
	}
	for r, i := range s.scr.order {
		a.Proposed[r] = s.scr.ids[i]
		a.ConsumerIntentions[r] = set.CI[i]
		a.ProviderIntentions[r] = set.PI[i]
		a.Scores[r] = s.scr.scores[i]
		if r < n {
			a.Selected[r] = s.scr.ids[i]
		}
	}
	if q.Trace.Sampled {
		// Sampled query: capture the full ranked score breakdown — every
		// Definition-3 input per candidate — while the scratch columns are
		// still position-aligned. Costs heap only on sampled mediations.
		ex := &model.Explain{
			Allocator:  s.Name(),
			SatC:       satC,
			Candidates: len(candidates),
			Entries:    make([]model.ExplainEntry, m),
		}
		for r, i := range s.scr.order {
			ex.Entries[r] = model.ExplainEntry{
				Rank:      r + 1,
				Provider:  s.scr.ids[i],
				CI:        set.CI[i],
				PI:        set.PI[i],
				SatP:      satP[i],
				Omega:     s.scr.omega[i],
				Score:     s.scr.scores[i],
				CIImputed: set.CIImputed,
				PIImputed: set.ProviderImputed(i),
			}
		}
		a.Explain = ex
	}
	return a, nil
}

var _ alloc.Allocator = (*SbQA)(nil)
var _ alloc.Stateful = (*SbQA)(nil)
