package core

import (
	"context"
	"sync"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/knbest"
	"sbqa/internal/model"
)

// TestRetuneWhileMediatingRace is the `-race` churn workout for the atomic
// parameter snapshot: one goroutine mediates continuously (the allocator's
// single-threaded contract) while others hammer SetParams and SetScoring.
// Before the snapshot redesign this was the documented unsafe path —
// Scenario 6 could only retune between runs; now a tuner may retune a live
// allocator at any time, and every mediation must see one coherent
// (params, scorer) pair.
func TestRetuneWhileMediatingRace(t *testing.T) {
	s := MustNew(Config{KnBest: knbest.Params{K: 8, Kn: 4}, Seed: 1})

	env := alloc.NewStaticEnv()
	snaps := make([]model.ProviderSnapshot, 16)
	for i := range snaps {
		snaps[i] = model.ProviderSnapshot{ID: model.ProviderID(i), Utilization: float64(i) / 16, Capacity: 1}
		env.SetCI(0, model.ProviderID(i), model.Intention(float64(i%5)/5))
		env.SetPI(model.ProviderID(i), 0, model.Intention(float64(i%3)/3))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Retuners: KnBest sweeps and ω sweeps, concurrently with mediation.
	wg.Add(2)
	go func() {
		defer wg.Done()
		params := []knbest.Params{{K: 4, Kn: 2}, {K: 8, Kn: 4}, {K: 16, Kn: 8}, {K: 12, Kn: 1}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.SetParams(params[i%len(params)])
			}
		}
	}()
	go func() {
		defer wg.Done()
		omegas := []float64{0, 0.25, 0.5, 0.75, 1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if i%6 == 5 {
					s.SetScoring(nil, 0) // back to adaptive
				} else {
					w := omegas[i%len(omegas)]
					s.SetScoring(&w, 0.5)
				}
				_ = s.Name() // reads the scorer snapshot
				_ = s.Params()
			}
		}
	}()

	// The mediating goroutine: Allocate stays single-threaded, as the
	// engine's shard lock guarantees in production.
	for i := 0; i < 5000; i++ {
		a, err := s.Allocate(context.Background(), env, model.Query{ID: model.QueryID(i), Consumer: 0, N: 1, Work: 1}, snaps)
		if err != nil {
			t.Fatalf("mediation %d: %v", i, err)
		}
		if a == nil || len(a.Selected) == 0 {
			t.Fatalf("mediation %d returned no selection", i)
		}
		// Coherence: the proposal can never exceed the largest kn any
		// retuner installs.
		if len(a.Proposed) > 8 {
			t.Fatalf("mediation %d proposed %d providers; largest configured kn is 8", i, len(a.Proposed))
		}
	}
	close(stop)
	wg.Wait()
}

// TestSetScoringSemantics pins the retuning surface: fixed ω installs and
// uninstalls cleanly and ε edits stick, without touching KnBest state.
func TestSetScoringSemantics(t *testing.T) {
	s := MustNew(Config{KnBest: knbest.Params{K: 6, Kn: 3}, Seed: 1})
	if !s.Scorer().Adaptive() {
		t.Fatal("default scorer should be adaptive")
	}
	w := 0.75
	s.SetScoring(&w, 0)
	if sc := s.Scorer(); sc.Adaptive() || sc.FixedOmega != 0.75 || sc.Epsilon != 1 {
		t.Fatalf("after SetScoring(0.75, 0): %+v", sc)
	}
	s.SetScoring(nil, 0.25)
	if sc := s.Scorer(); !sc.Adaptive() || sc.Epsilon != 0.25 {
		t.Fatalf("after SetScoring(nil, 0.25): %+v", sc)
	}
	if got := s.Params(); got != (knbest.Params{K: 6, Kn: 3}) {
		t.Fatalf("SetScoring disturbed KnBest params: %+v", got)
	}
	// The deprecated Scorer() accessor returns a snapshot: mutating it
	// must not affect the allocator.
	s.Scorer().Epsilon = 99
	if sc := s.Scorer(); sc.Epsilon != 0.25 {
		t.Fatalf("mutating the Scorer() snapshot leaked into the allocator: ε = %g", sc.Epsilon)
	}
}
