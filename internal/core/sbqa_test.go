package core

import (
	"context"
	"strings"
	"testing"

	"sbqa/internal/alloc"
	"sbqa/internal/knbest"
	"sbqa/internal/model"
)

// allocate runs one mediation with a background context, failing the test
// on protocol errors (StaticEnv never produces one).
func allocate(t *testing.T, s *SbQA, env alloc.Env, q model.Query, cands []model.ProviderSnapshot) *model.Allocation {
	t.Helper()
	a, err := s.Allocate(context.Background(), env, q, cands)
	if err != nil {
		t.Fatalf("Allocate error: %v", err)
	}
	return a
}

func snaps(utils ...float64) []model.ProviderSnapshot {
	out := make([]model.ProviderSnapshot, len(utils))
	for i, u := range utils {
		out[i] = model.ProviderSnapshot{ID: model.ProviderID(i), Utilization: u, Capacity: 1}
	}
	return out
}

func query(n int) model.Query { return model.Query{ID: 1, Consumer: 0, N: n, Work: 1} }

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{KnBest: knbest.Params{K: 2, Kn: 5}}); err == nil {
		t.Error("invalid KnBest accepted")
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if s.Params() != knbest.DefaultParams() {
		t.Errorf("zero config params = %+v", s.Params())
	}
	if !s.Scorer().Adaptive() {
		t.Error("zero config should be adaptive (Omega 0 is ambiguous only if set explicitly negative)")
	}
}

func TestNewOmegaModes(t *testing.T) {
	fixed := MustNew(Config{Omega: FixedOmega(0.25)})
	if fixed.Scorer().Adaptive() {
		t.Error("fixed omega should be fixed")
	}
	if !strings.Contains(fixed.Name(), "0.25") {
		t.Errorf("Name = %q", fixed.Name())
	}
	adaptive := MustNew(Config{})
	if !adaptive.Scorer().Adaptive() {
		t.Error("nil Omega should be adaptive")
	}
	if adaptive.Name() != "SbQA" {
		t.Errorf("Name = %q", adaptive.Name())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid config")
		}
	}()
	MustNew(Config{KnBest: knbest.Params{K: 1, Kn: 9}})
}

func TestAllocateEmptyCandidates(t *testing.T) {
	s := MustNew(DefaultConfig())
	if got := allocate(t, s, alloc.NewStaticEnv(), query(1), nil); got != nil {
		t.Errorf("Allocate with no candidates = %v", got)
	}
}

func TestAllocateContract(t *testing.T) {
	s := MustNew(Config{KnBest: knbest.Params{K: 5, Kn: 3}, Seed: 7})
	env := alloc.NewStaticEnv()
	cands := snaps(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
	for n := 1; n <= 5; n++ {
		a := allocate(t, s, env, query(n), cands)
		if a == nil {
			t.Fatalf("nil allocation n=%d", n)
		}
		// Proposed = Kn (3 providers), Selected = min(n, kn).
		if len(a.Proposed) != 3 {
			t.Fatalf("proposed %d, want kn=3", len(a.Proposed))
		}
		wantSel := n
		if wantSel > 3 {
			wantSel = 3
		}
		if len(a.Selected) != wantSel {
			t.Fatalf("selected %d, want %d", len(a.Selected), wantSel)
		}
		if len(a.ConsumerIntentions) != 3 || len(a.ProviderIntentions) != 3 || len(a.Scores) != 3 {
			t.Fatal("intentions/scores not recorded for the whole proposed set")
		}
		// Scores are ranked best-first, and Selected is the prefix.
		for i := 1; i < len(a.Scores); i++ {
			if a.Scores[i] > a.Scores[i-1] {
				t.Fatalf("scores not descending: %v", a.Scores)
			}
		}
		for i, p := range a.Selected {
			if p != a.Proposed[i] {
				t.Fatalf("selected %v is not the best-ranked prefix of %v", a.Selected, a.Proposed)
			}
		}
	}
}

func TestAllocatePrefersMutualInterest(t *testing.T) {
	// Full population in play (k=kn=|P_q|), fixed ω=0.5: the provider with
	// mutual interest must win.
	s := MustNew(Config{KnBest: knbest.Params{K: 0, Kn: 0}, Omega: FixedOmega(0.5)})
	env := alloc.NewStaticEnv()
	env.SetCI(0, 0, -0.5)
	env.SetPI(0, 0, 0.9)
	env.SetCI(0, 1, 0.9)
	env.SetPI(1, 0, 0.8) // mutual interest
	env.SetCI(0, 2, 0.9)
	env.SetPI(2, 0, -1)
	a := allocate(t, s, env, query(1), snaps(0, 0, 0))
	if a.Selected[0] != 1 {
		t.Errorf("Selected = %v, want provider 1 (mutual interest)", a.Selected)
	}
}

func TestAllocateAdaptiveOmegaFavorsStarvedProvider(t *testing.T) {
	// Two providers equally liked by the consumer; provider 1 is deeply
	// dissatisfied and wants the query more. Adaptive ω must tip the scale.
	s := MustNew(Config{KnBest: knbest.Params{K: 0, Kn: 0}})
	env := alloc.NewStaticEnv()
	env.SetCI(0, 0, 0.6)
	env.SetCI(0, 1, 0.6)
	env.SetPI(0, 0, 0.4)
	env.SetPI(1, 0, 0.9)
	env.SatP[0] = 0.95
	env.SatP[1] = 0.05
	env.SatC[0] = 0.5
	a := allocate(t, s, env, query(1), snaps(0.5, 0.5))
	if a.Selected[0] != 1 {
		t.Errorf("Selected = %v, want starved provider 1", a.Selected)
	}
}

func TestAllocateKnBestLimitsContacts(t *testing.T) {
	s := MustNew(Config{KnBest: knbest.Params{K: 4, Kn: 2}, Seed: 3})
	env := alloc.NewStaticEnv()
	a := allocate(t, s, env, query(1), snaps(make([]float64, 100)...))
	if len(a.Proposed) != 2 {
		t.Errorf("proposed %d providers, want kn=2", len(a.Proposed))
	}
}

func TestAllocateStage2PrefersIdleProviders(t *testing.T) {
	// k = population, kn = 2: the two least-utilized providers are the only
	// ones proposed, regardless of intentions.
	s := MustNew(Config{KnBest: knbest.Params{K: 0, Kn: 2}})
	env := alloc.NewStaticEnv()
	cands := snaps(0.9, 0.1, 0.8, 0.2)
	a := allocate(t, s, env, query(1), cands)
	proposed := map[model.ProviderID]bool{}
	for _, p := range a.Proposed {
		proposed[p] = true
	}
	if !proposed[1] || !proposed[3] {
		t.Errorf("Proposed = %v, want the idle providers {1,3}", a.Proposed)
	}
}

func TestSetParams(t *testing.T) {
	s := MustNew(DefaultConfig())
	s.SetParams(knbest.Params{K: 3, Kn: 1})
	if s.Params().Kn != 1 {
		t.Errorf("SetParams not applied: %+v", s.Params())
	}
	a := allocate(t, s, alloc.NewStaticEnv(), query(1), snaps(0, 0, 0, 0, 0))
	if len(a.Proposed) != 1 {
		t.Errorf("retuned kn not used: %v", a.Proposed)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	env := alloc.NewStaticEnv()
	cands := snaps(0.5, 0.3, 0.9, 0.1, 0.7, 0.2)
	a := MustNew(Config{KnBest: knbest.Params{K: 3, Kn: 2}, Seed: 42})
	b := MustNew(Config{KnBest: knbest.Params{K: 3, Kn: 2}, Seed: 42})
	for i := 0; i < 50; i++ {
		qa := allocate(t, a, env, query(1), cands)
		qb := allocate(t, b, env, query(1), cands)
		if qa.Selected[0] != qb.Selected[0] {
			t.Fatalf("allocation diverged at round %d", i)
		}
	}
}
