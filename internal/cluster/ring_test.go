package cluster

import (
	"testing"

	"sbqa/internal/model"
)

// TestRingGoldenVectors pins the keyspace. These values were computed
// once from the hand-rolled FNV-1a + Murmur3-finalizer pipeline and
// must never change: a drift would make upgraded and non-upgraded
// nodes disagree on consumer ownership mid-rollout, and would
// invalidate every follower's "is this record mine now" replay filter.
func TestRingGoldenVectors(t *testing.T) {
	r := NewRing([]string{"alpha", "bravo", "charlie"}, 64)
	golden := []struct {
		consumer model.ConsumerID
		hash     uint64
		owner    string
	}{
		{0, 0x7bd3144f29c0cc9e, "bravo"},
		{1, 0xd4ad0eb39c50357, "charlie"},
		{2, 0xf6034fee4c3ffc73, "bravo"},
		{3, 0xbdcbd7f23c4957ad, "alpha"},
		{4, 0xbff35ced892c636f, "alpha"},
		{5, 0x426743b6503cd797, "charlie"},
		{6, 0xc01824b73c5a9ec1, "alpha"},
		{7, 0xc2e5519bedb9721, "charlie"},
		{17, 0x3cb87736a9f0a77d, "bravo"},
		{42, 0x641dede4f0973e8c, "charlie"},
		{100, 0x82d23d2988ef915e, "charlie"},
		{1000, 0x95e25c5a5b765d21, "bravo"},
		{65535, 0x4896917cc0fe81d9, "charlie"},
		{-1, 0x6a92c0228678c02e, "charlie"},
		{-9, 0x86ec8e03e4e294a5, "alpha"},
	}
	for _, g := range golden {
		if h := KeyHash(g.consumer); h != g.hash {
			t.Errorf("KeyHash(%d) = %#x, want %#x", g.consumer, h, g.hash)
		}
		if o := r.Owner(g.consumer); o != g.owner {
			t.Errorf("Owner(%d) = %q, want %q", g.consumer, o, g.owner)
		}
	}
}

// TestRingOrderIndependent: node list order and duplicates never change
// ownership — every process builds the ring from its own flag order.
func TestRingOrderIndependent(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3", "n4"}, 32)
	b := NewRing([]string{"n4", "n2", "n1", "n3", "n2", ""}, 32)
	for c := model.ConsumerID(-50); c < 500; c++ {
		if a.Owner(c) != b.Owner(c) {
			t.Fatalf("consumer %d: %q vs %q under reordered nodes", c, a.Owner(c), b.Owner(c))
		}
	}
	if got := b.Len(); got != 4 {
		t.Fatalf("Len = %d after dedup, want 4", got)
	}
}

// TestRingSpread: virtual nodes keep ownership shares roughly even —
// no node may own more than twice its fair share over a large keyset.
func TestRingSpread(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := NewRing(nodes, DefaultVNodes)
	counts := make(map[string]int)
	const keys = 10000
	for c := 0; c < keys; c++ {
		counts[r.Owner(model.ConsumerID(c))]++
	}
	fair := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Errorf("node %s owns nothing", n)
		}
		if counts[n] > 2*fair {
			t.Errorf("node %s owns %d of %d keys, > 2x fair share %d", n, counts[n], keys, fair)
		}
	}
}

// TestRingRemovalOnlyMovesDepartedKeys: dropping one node must not
// reshuffle consumers whose owner survives — that stability is the
// whole point of consistent hashing, and failover correctness depends
// on it (only the dead node's consumers replay from replicas).
func TestRingRemovalOnlyMovesDepartedKeys(t *testing.T) {
	full := NewRing([]string{"a", "b", "c"}, DefaultVNodes)
	shrunk := NewRing([]string{"a", "c"}, DefaultVNodes)
	moved := 0
	for c := model.ConsumerID(0); c < 3000; c++ {
		was, is := full.Owner(c), shrunk.Owner(c)
		if was != "b" {
			if is != was {
				t.Fatalf("consumer %d moved %q -> %q though %q survived", c, was, is, was)
			}
			continue
		}
		moved++
		if is != "a" && is != "c" {
			t.Fatalf("consumer %d orphaned: owner %q", c, is)
		}
	}
	if moved == 0 {
		t.Fatal("no consumers owned by the removed node — test vacuous")
	}
}

// TestRingFollowers: followers are the distinct ring successors — the
// nodes that inherit keyspace, and so the WAL shipping targets.
func TestRingFollowers(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, DefaultVNodes)
	// With 64 vnodes each, every node's successor set is the other two.
	for _, n := range []string{"a", "b", "c"} {
		f := r.Followers(n)
		if len(f) != 2 {
			t.Fatalf("Followers(%s) = %v, want both other nodes", n, f)
		}
	}
	if f := NewRing([]string{"solo"}, 8).Followers("solo"); f != nil {
		t.Fatalf("solo ring followers = %v, want none", f)
	}
	if f := r.Followers("ghost"); f != nil {
		t.Fatalf("absent node followers = %v, want none", f)
	}
	// Every follower must actually inherit keys: removing the node
	// reassigns each of its consumers to one of its followers.
	followers := map[string]bool{}
	for _, f := range r.Followers("b") {
		followers[f] = true
	}
	shrunk := NewRing([]string{"a", "c"}, DefaultVNodes)
	for c := model.ConsumerID(0); c < 2000; c++ {
		if r.Owner(c) == "b" && !followers[shrunk.Owner(c)] {
			t.Fatalf("consumer %d reassigned to %q, not a follower of b", c, shrunk.Owner(c))
		}
	}
}

// TestRingEmpty: an empty ring owns nothing, quietly.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if o := r.Owner(1); o != "" {
		t.Fatalf("empty ring owner = %q", o)
	}
	if r.Contains("x") || r.Len() != 0 {
		t.Fatal("empty ring claims membership")
	}
}

// FuzzRingOwner: for any consumer ID and any non-empty live subset of a
// fixed peer set, ownership resolves to exactly one node, that node is
// a member of the subset, and the answer is identical when the ring is
// rebuilt from a reversed node list.
func FuzzRingOwner(f *testing.F) {
	f.Add(int64(0), uint8(0b11111))
	f.Add(int64(-1), uint8(0b00001))
	f.Add(int64(1<<62), uint8(0b10101))
	f.Add(int64(42), uint8(0b00110))
	all := []string{"node-a", "node-b", "node-c", "node-d", "node-e"}
	f.Fuzz(func(t *testing.T, key int64, mask uint8) {
		var live []string
		for i, n := range all {
			if mask&(1<<i) != 0 {
				live = append(live, n)
			}
		}
		c := model.ConsumerID(key)
		if len(live) == 0 {
			if o := NewRing(live, 16).Owner(c); o != "" {
				t.Fatalf("empty subset owner = %q", o)
			}
			return
		}
		r := NewRing(live, 16)
		owner := r.Owner(c)
		if !r.Contains(owner) {
			t.Fatalf("owner %q of consumer %d not in live set %v", owner, c, live)
		}
		reversed := make([]string, len(live))
		for i, n := range live {
			reversed[len(live)-1-i] = n
		}
		if o2 := NewRing(reversed, 16).Owner(c); o2 != owner {
			t.Fatalf("consumer %d: owner %q vs %q under reversed construction", c, owner, o2)
		}
	})
}
