package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// Health is a peer's position in the failure-detection state machine:
//
//	Alive ──(SuspectAfter consecutive probe failures)──> Suspect
//	Suspect ──(DownAfter consecutive probe failures)──> Down
//	any ──(one successful probe)──> Alive
//
// Only Down changes routing: Suspect peers still receive forwards (a
// slow peer beats a spurious failover), Down peers are dropped from
// the live ring so their keyspace re-resolves to the survivors.
type Health uint8

const (
	HealthAlive Health = iota
	HealthSuspect
	HealthDown
)

func (h Health) String() string {
	switch h {
	case HealthAlive:
		return "alive"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	}
	return "unknown"
}

type peerState struct {
	peer     Peer
	health   Health
	failures int // consecutive probe failures
	lastSeen time.Time
	rtt      time.Duration
	lastErr  string
}

// membership owns peer health and derives the live routing ring from
// it. The live ring hangs off an atomic pointer: the submit guard and
// every forwarded request read it lock-free.
type membership struct {
	self         string
	vnodes       int
	suspectAfter int
	downAfter    int
	onTransition func(p Peer, from, to Health, lastErr string)

	live atomic.Pointer[Ring]

	mu    sync.Mutex
	peers map[string]*peerState
}

func newMembership(self string, peers []Peer, vnodes, suspectAfter, downAfter int, onTransition func(Peer, Health, Health, string)) *membership {
	m := &membership{
		self:         self,
		vnodes:       vnodes,
		suspectAfter: suspectAfter,
		downAfter:    downAfter,
		onTransition: onTransition,
		peers:        make(map[string]*peerState, len(peers)),
	}
	for _, p := range peers {
		// Optimistic start: peers begin Alive so a booting cluster
		// routes correctly before the first probe round completes.
		m.peers[p.ID] = &peerState{peer: p, health: HealthAlive}
	}
	m.live.Store(m.buildLiveLocked())
	return m
}

// liveRing returns the current routing ring (never nil).
func (m *membership) liveRing() *Ring { return m.live.Load() }

// buildLiveLocked derives the routing ring: self plus every peer not
// Down. Callers hold mu (or run before the membership is shared).
func (m *membership) buildLiveLocked() *Ring {
	nodes := make([]string, 0, len(m.peers)+1)
	nodes = append(nodes, m.self)
	for id, ps := range m.peers {
		if ps.health != HealthDown {
			nodes = append(nodes, id)
		}
	}
	return NewRing(nodes, m.vnodes)
}

// observe folds one probe result into the state machine, rebuilding
// the live ring and firing the transition hook when health changes.
// The hook runs outside the lock: it replays WAL and emits events.
func (m *membership) observe(id string, rtt time.Duration, err error) {
	m.mu.Lock()
	ps, ok := m.peers[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	from := ps.health
	if err == nil {
		ps.failures = 0
		ps.health = HealthAlive
		ps.lastSeen = time.Now()
		ps.rtt = rtt
		ps.lastErr = ""
	} else {
		ps.failures++
		ps.lastErr = err.Error()
		switch {
		case ps.failures >= m.downAfter:
			ps.health = HealthDown
		case ps.failures >= m.suspectAfter:
			ps.health = HealthSuspect
		}
	}
	to := ps.health
	peer, lastErr := ps.peer, ps.lastErr
	if from != to {
		m.live.Store(m.buildLiveLocked())
	}
	m.mu.Unlock()
	if from != to && m.onTransition != nil {
		m.onTransition(peer, from, to, lastErr)
	}
}

// peerInfo returns a peer's identity and health.
func (m *membership) peerInfo(id string) (Peer, Health, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.peers[id]
	if !ok {
		return Peer{}, 0, false
	}
	return ps.peer, ps.health, true
}

// health returns just the peer's health state (HealthDown for unknown
// IDs, which routes conservatively).
func (m *membership) health(id string) Health {
	_, h, ok := m.peerInfo(id)
	if !ok {
		return HealthDown
	}
	return h
}

// status snapshots one peer for the control surface.
func (m *membership) status(id string) PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.peers[id]
	if !ok {
		return PeerStatus{Peer: Peer{ID: id}, Health: "unknown"}
	}
	return PeerStatus{
		Peer:      ps.peer,
		Health:    ps.health.String(),
		Failures:  ps.failures,
		LastSeen:  ps.lastSeen,
		RTTMillis: float64(ps.rtt) / float64(time.Millisecond),
		LastError: ps.lastErr,
	}
}
