package cluster

import (
	"context"
	"sync"
	"time"

	"sbqa/internal/persist"
)

// replicator ships the local journal's sealed segments to this node's
// ring followers. Each tick it rotates the active segment if it holds
// records (bounding loss to ReplicateInterval of traffic plus whatever
// the last rotation missed), then sends every sealed segment a live
// follower does not yet hold. Shipping is idempotent and resumable:
// the shipped-set is seeded from the follower's own inventory on first
// contact, so an owner restart or follower restart never re-ships more
// than it must and never skips a hole.
type replicator struct {
	n *Node

	mu      sync.Mutex
	shipped map[string]map[uint64]bool // follower ID -> segment seqs confirmed held
	seeded  map[string]bool            // follower ID -> inventory fetched
	count   map[string]uint64          // follower ID -> segments shipped by this process
}

type replLag struct {
	segments int
	bytes    int64
	shipped  uint64
}

func newReplicator(n *Node) *replicator {
	return &replicator{
		n:       n,
		shipped: make(map[string]map[uint64]bool),
		seeded:  make(map[string]bool),
		count:   make(map[string]uint64),
	}
}

func (r *replicator) loop() {
	defer r.n.wg.Done()
	t := time.NewTicker(r.n.cfg.ReplicateInterval)
	defer t.Stop()
	for {
		select {
		case <-r.n.stop:
			return
		case <-t.C:
			r.tick()
		}
	}
}

// followers returns this node's shipping targets that are not Down.
// Down followers keep their shipped-set; they catch up on recovery.
func (r *replicator) followers() []Peer {
	var out []Peer
	for _, id := range r.n.full.Followers(r.n.cfg.Self.ID) {
		if p, h, ok := r.n.mem.peerInfo(id); ok && h != HealthDown {
			out = append(out, p)
		}
	}
	return out
}

func (r *replicator) tick() {
	store := r.n.cfg.Store
	if _, err := store.RotateIfDirty(); err != nil {
		r.n.cfg.Logf("cluster: replication rotate: %v", err)
		return
	}
	sealed := store.SealedSegmentSeqs()
	if len(sealed) == 0 {
		return
	}
	for _, p := range r.followers() {
		r.shipTo(p, sealed)
	}
}

// shipTo sends p every sealed segment it is missing, oldest first so a
// partial round leaves a prefix, never a hole.
func (r *replicator) shipTo(p Peer, sealed []uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*r.n.cfg.ReplicateInterval+5*time.Second)
	defer cancel()
	r.mu.Lock()
	if !r.seeded[p.ID] {
		r.mu.Unlock()
		held, err := r.n.tr.heldSegments(ctx, p.Addr)
		if err != nil {
			r.n.cfg.Logf("cluster: seeding shipped set from %s: %v", p.ID, err)
			return
		}
		r.mu.Lock()
		set := r.shipped[p.ID]
		if set == nil {
			set = make(map[uint64]bool)
			r.shipped[p.ID] = set
		}
		for _, seq := range held {
			set[seq] = true
		}
		r.seeded[p.ID] = true
	}
	set := r.shipped[p.ID]
	if set == nil {
		set = make(map[uint64]bool)
		r.shipped[p.ID] = set
	}
	var todo []uint64
	for _, seq := range sealed {
		if !set[seq] {
			todo = append(todo, seq)
		}
	}
	r.mu.Unlock()

	for _, seq := range todo {
		rc, size, err := r.n.cfg.Store.OpenSealedSegment(seq)
		if err != nil {
			// Sealed set moved under us (compaction); next tick re-lists.
			r.n.cfg.Logf("cluster: opening sealed segment %d: %v", seq, err)
			return
		}
		err = r.n.tr.shipSegment(ctx, p.Addr, seq, rc, size)
		rc.Close()
		if err != nil {
			r.n.cfg.Logf("cluster: shipping segment %d to %s: %v", seq, p.ID, err)
			return
		}
		r.mu.Lock()
		set[seq] = true
		r.count[p.ID]++
		r.mu.Unlock()
	}
}

// lag reports, per follower, how far its replica trails the local
// journal: sealed segments (and their bytes) not yet confirmed held,
// plus the active segment's unsealed bytes — the tail a crash right
// now would lose for that follower.
func (r *replicator) lag() map[string]replLag {
	store := r.n.cfg.Store
	sealed := store.SealedSegmentSeqs()
	active := store.ActiveSegmentBytes()
	sizes := make(map[uint64]int64, len(sealed))
	for _, seq := range sealed {
		if sz, err := statFile(persist.SegmentFilePath(r.n.cfg.StateDir, seq)); err == nil {
			sizes[seq] = sz
		}
	}
	out := make(map[string]replLag)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range r.n.full.Followers(r.n.cfg.Self.ID) {
		l := replLag{bytes: active, shipped: r.count[id]}
		for _, seq := range sealed {
			if !r.shipped[id][seq] {
				l.segments++
				l.bytes += sizes[seq]
			}
		}
		out[id] = l
	}
	return out
}
