package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sbqa/internal/model"
)

// TestRaceMembershipChurnUnderRoutingLoad hammers the read side of the
// node — routing, the submit guard, ring reads, and status snapshots —
// while a flapping peer drives constant health transitions, ring
// rebuilds, and failover replays. Run under -race this proves the live
// ring swap and the membership bookkeeping are coherent.
func TestRaceMembershipChurnUnderRoutingLoad(t *testing.T) {
	var flaky atomic.Bool
	flaky.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc(HealthzPath, func(w http.ResponseWriter, r *http.Request) {
		if !flaky.Load() {
			http.Error(w, "flap", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(200)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cfg := fastConfig(Peer{ID: "a"}, Peer{ID: "b", Addr: srv.URL})
	cfg.HeartbeatInterval = 2 * time.Millisecond
	cfg.SuspectAfter = 1
	cfg.DownAfter = 2
	cfg.StateDir = t.TempDir()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // flapper
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				flaky.Store(i%2 == 0)
			}
		}
	}()
	guard := n.SubmitGuard()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := model.ConsumerID(i % 257)
				owner, self, rerr := n.Route(c)
				if !self && owner.ID != "b" && rerr == nil {
					t.Errorf("Route(%d) returned foreign owner %+v", c, owner)
					return
				}
				_ = guard(model.Query{Consumer: c})
				if ring := n.LiveRing(); ring.Len() < 1 || !ring.Contains("a") {
					t.Errorf("live ring lost self: %v", ring.Nodes())
					return
				}
				if g == 0 && i%64 == 0 {
					_ = n.Status()
				}
			}
		}(g)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	n.Close()
}
