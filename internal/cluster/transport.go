package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"time"

	"sbqa/internal/persist"
)

// transport is the intra-cluster HTTP client: heartbeat probes and WAL
// segment transfers. Forwarded client traffic does not pass through
// here — the gateway proxies it directly so the client's own deadline
// and body stream through untouched.
type transport struct {
	client *http.Client
	self   string
}

// probe checks a peer's health endpoint and measures round-trip time.
// Any non-200 answer counts as a failure: a peer that is up but not
// ready (still restoring its journal) must not receive forwards yet.
func (t *transport) probe(timeout time.Duration, addr string) (time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+HealthzPath, nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("healthz: %s", resp.Status)
	}
	return time.Since(start), nil
}

// segmentsURL builds the replication endpoint for an origin on addr.
func segmentsURL(addr, origin string) string {
	return addr + SegmentsPath + "?origin=" + url.QueryEscape(origin)
}

// heldSegments asks a follower which of our segments it already holds,
// so a restarted owner does not re-ship the whole journal.
func (t *transport) heldSegments(ctx context.Context, addr string) ([]uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, segmentsURL(addr, t.self), nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("held segments: %s", resp.Status)
	}
	var out struct {
		Seqs []uint64 `json:"seqs"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return nil, err
	}
	return out.Seqs, nil
}

// shipSegment streams one sealed segment to a follower. The body is
// the raw journal segment; the follower validates before storing, so a
// 200 means the bytes landed intact.
func (t *transport) shipSegment(ctx context.Context, addr string, seq uint64, body io.Reader, size int64) error {
	u := segmentsURL(addr, t.self) + "&seq=" + strconv.FormatUint(seq, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
	if err != nil {
		return err
	}
	req.ContentLength = size
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("ship segment %d: %s: %s", seq, resp.Status, msg)
	}
	return nil
}

// acceptSegmentFile lands one shipped segment in dir: stream to a
// temporary file, validate framing/checksums/header-seq, then rename
// into the canonical segment name. The rename makes acceptance atomic
// — a reader never sees a half-written replica — and re-shipping an
// already-held segment is a silent success.
func acceptSegmentFile(dir string, seq uint64, body io.Reader) error {
	dst := persist.SegmentFilePath(dir, seq)
	if _, err := os.Stat(dst); err == nil {
		io.Copy(io.Discard, body)
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "incoming-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := io.Copy(tmp, body); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: receiving segment %d: %w", seq, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	gotSeq, _, err := persist.ValidateSegmentFile(tmp.Name())
	if err != nil {
		return fmt.Errorf("cluster: shipped segment %d failed validation: %w", seq, err)
	}
	if gotSeq != seq {
		return fmt.Errorf("cluster: shipped segment header says seq %d, transfer says %d", gotSeq, seq)
	}
	return os.Rename(tmp.Name(), dst)
}

// statFile returns a file's size, for lag and replica accounting.
func statFile(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
