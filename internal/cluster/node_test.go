package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"sbqa/internal/event"
	"sbqa/internal/model"
	"sbqa/internal/persist"
	"sbqa/internal/satisfaction"
)

// serveNode exposes a node's intra-cluster surface the way the daemon
// does: healthz plus the segments inventory/acceptance endpoints.
func serveNode(t *testing.T, n *Node) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc(HealthzPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc(SegmentsPath, func(w http.ResponseWriter, r *http.Request) {
		origin := r.URL.Query().Get("origin")
		switch r.Method {
		case http.MethodGet:
			seqs, err := n.HeldSegments(origin)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			json.NewEncoder(w).Encode(map[string]any{"seqs": seqs})
		case http.MethodPost:
			seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
			if err != nil {
				http.Error(w, "bad seq", http.StatusBadRequest)
				return
			}
			if err := n.AcceptSegment(origin, seq, r.Body); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusOK)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// fastConfig: probe and replicate aggressively so tests converge in
// tens of milliseconds.
func fastConfig(self Peer, peers ...Peer) Config {
	return Config{
		Self:              self,
		Peers:             peers,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  50 * time.Millisecond,
		SuspectAfter:      2,
		DownAfter:         4,
		ReplicateInterval: 10 * time.Millisecond,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMembershipStateMachine drives a peer alive -> suspect -> down by
// killing its server, checks the live ring and routing shrink, then
// verifies the typed PeerChange trail.
func TestMembershipStateMachine(t *testing.T) {
	peerMux := http.NewServeMux()
	peerMux.HandleFunc(HealthzPath, func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	peerSrv := httptest.NewServer(peerMux)
	defer peerSrv.Close()

	var mu sync.Mutex
	var changes []event.PeerChange
	obs := event.Funcs{PeerChange: func(pc event.PeerChange) {
		mu.Lock()
		changes = append(changes, pc)
		mu.Unlock()
	}}

	cfg := fastConfig(Peer{ID: "a", Addr: "http://self.invalid"}, Peer{ID: "b", Addr: peerSrv.URL})
	cfg.Observer = obs
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Start()

	if got := n.LiveRing().Nodes(); len(got) != 2 {
		t.Fatalf("live ring at boot = %v, want both nodes", got)
	}
	// Some consumer b owns while alive.
	var remote model.ConsumerID = -1
	for c := model.ConsumerID(0); c < 100; c++ {
		if n.LiveRing().Owner(c) == "b" {
			remote = c
			break
		}
	}
	if remote < 0 {
		t.Fatal("no consumer owned by peer b")
	}
	if p, self, err := n.Route(remote); self || err != nil || p.ID != "b" {
		t.Fatalf("Route(%d) = (%v, %v, %v), want remote b", remote, p, self, err)
	}
	if err := n.SubmitGuard()(model.Query{Consumer: remote}); err != ErrNotOwner {
		t.Fatalf("guard on remote consumer = %v, want ErrNotOwner", err)
	}

	peerSrv.Close()
	waitFor(t, "peer b down", func() bool { return n.mem.health("b") == HealthDown })

	// Down: b leaves the routing ring, its consumers re-resolve to a.
	if got := n.LiveRing().Nodes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("live ring after down = %v, want [a]", got)
	}
	if _, self, err := n.Route(remote); !self || err != nil {
		t.Fatalf("Route after down = (self=%v, %v), want local", self, err)
	}
	if err := n.SubmitGuard()(model.Query{Consumer: remote}); err != nil {
		t.Fatalf("guard after takeover = %v, want nil", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(changes) < 2 {
		t.Fatalf("peer changes = %v, want alive->suspect and suspect->down", changes)
	}
	first, last := changes[0], changes[len(changes)-1]
	if first.Node != "b" || first.From != "alive" || first.To != "suspect" || first.Err == "" {
		t.Errorf("first transition = %+v, want alive->suspect with error", first)
	}
	if last.From != "suspect" || last.To != "down" {
		t.Errorf("last transition = %+v, want suspect->down", last)
	}

	st := n.Status()
	if len(st.Live) != 1 || len(st.Nodes) != 2 {
		t.Errorf("status rings: live %v full %v", st.Live, st.Nodes)
	}
	if len(st.Peers) != 1 || st.Peers[0].Health != "down" || st.Peers[0].LastError == "" {
		t.Errorf("peer status = %+v, want down with error", st.Peers)
	}
}

// TestMembershipRecovery: a down peer that answers again returns to
// alive and re-enters the routing ring.
func TestMembershipRecovery(t *testing.T) {
	var up sync.Map
	up.Store("ok", false)
	mux := http.NewServeMux()
	mux.HandleFunc(HealthzPath, func(w http.ResponseWriter, r *http.Request) {
		if ok, _ := up.Load("ok"); !ok.(bool) {
			http.Error(w, "booting", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(200)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	n, err := New(fastConfig(Peer{ID: "a"}, Peer{ID: "b", Addr: srv.URL}))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Start()
	// Non-200 healthz is a failure: not-ready peers get no traffic.
	waitFor(t, "peer down while booting", func() bool { return n.mem.health("b") == HealthDown })
	up.Store("ok", true)
	waitFor(t, "peer recovery", func() bool { return n.mem.health("b") == HealthAlive })
	if got := n.LiveRing().Nodes(); len(got) != 2 {
		t.Fatalf("live ring after recovery = %v", got)
	}
}

// newStoreWithRecords opens a journal in dir and appends one outcome
// per consumer in consumers, leaving the records in the active segment.
func newStoreWithRecords(t *testing.T, dir string, consumers []model.ConsumerID) (*persist.Store, *satisfaction.Registry) {
	t.Helper()
	st, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := satisfaction.NewRegistry(satisfaction.DefaultWindow)
	if _, err := st.Restore(reg); err != nil {
		t.Fatal(err)
	}
	for i, c := range consumers {
		rec := &persist.Record{Type: persist.RecordOutcome, Outcome: persist.OutcomeRecord{
			QueryID:  int64(i + 1),
			Consumer: c,
			N:        1,
			Proposed: []model.ProviderID{1},
			CI:       []model.Intention{0.5},
			PI:       []model.Intention{0.5},
			Selected: []bool{true},
		}}
		rec.Apply(reg)
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return st, reg
}

// TestReplicationShipsAndFailoverRestoresMemory is the package-level
// end-to-end: owner a ships its journal to follower b; when a dies, b
// replays exactly the consumers the shrunken ring hands it, and the
// replica files are byte-identical to the owner's sealed segments.
func TestReplicationShipsAndFailoverRestoresMemory(t *testing.T) {
	ownerDir, followerDir := t.TempDir(), t.TempDir()
	consumers := make([]model.ConsumerID, 40)
	for i := range consumers {
		consumers[i] = model.ConsumerID(i)
	}
	store, ownerReg := newStoreWithRecords(t, ownerDir, consumers)
	defer store.Close()

	followerReg := satisfaction.NewRegistry(satisfaction.DefaultWindow)
	fCfg := fastConfig(Peer{ID: "b"}, Peer{ID: "a", Addr: "http://a.invalid"})
	fCfg.StateDir = followerDir
	fCfg.Registry = followerReg
	follower, err := New(fCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fSrv := serveNode(t, follower)

	oCfg := fastConfig(Peer{ID: "a"}, Peer{ID: "b", Addr: fSrv.URL})
	oCfg.StateDir = ownerDir
	oCfg.Store = store
	owner, err := New(oCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	owner.Start()

	// The replicator rotates the dirty active segment and ships it.
	waitFor(t, "segment shipped", func() bool {
		seqs, _ := follower.HeldSegments("a")
		return len(seqs) >= 1
	})
	seqs, _ := follower.HeldSegments("a")
	for _, seq := range seqs {
		want, err := os.ReadFile(persist.SegmentFilePath(ownerDir, seq))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(persist.SegmentFilePath(filepath.Join(followerDir, "replica", "a"), seq))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("replica of segment %d differs from owner's sealed file", seq)
		}
	}

	// Lag drains to zero once everything sealed is shipped.
	waitFor(t, "lag zero", func() bool {
		st := owner.Status()
		return len(st.Peers) == 1 && st.Peers[0].LagSegments == 0 && st.Peers[0].LagBytes == 0
	})
	if st := owner.Status(); !st.Peers[0].Follower || st.Peers[0].Shipped == 0 {
		t.Fatalf("owner peer status = %+v, want follower with shipped > 0", st.Peers[0])
	}

	// Now the follower notices a is dead (its probe address never
	// resolved) and replays the shipped WAL.
	follower.Start()
	waitFor(t, "owner down at follower", func() bool { return follower.mem.health("a") == HealthDown })
	waitFor(t, "failover replay", func() bool {
		st := follower.Status()
		return len(st.Replicas) == 1 && st.Replicas[0].Replayed > 0
	})

	// Two-node cluster, one dead: b owns every consumer, so the replay
	// must reproduce the owner's satisfaction memory exactly.
	for _, c := range consumers {
		if got, want := followerReg.ConsumerSatisfaction(c), ownerReg.ConsumerSatisfaction(c); got != want {
			t.Fatalf("consumer %d: replayed δs %v, owner had %v", c, got, want)
		}
	}
	st := follower.Status()
	if st.Replicas[0].Origin != "a" || st.Replicas[0].ReplayErr != "" {
		t.Fatalf("replica status = %+v", st.Replicas[0])
	}
}

// TestFailoverReplayFiltersToOwnedRange: with a third live node, the
// follower replays only consumers the live ring assigns to it — the
// rest belong to the survivor and must not pollute local memory.
func TestFailoverReplayFiltersToOwnedRange(t *testing.T) {
	deadDir := t.TempDir()
	consumers := make([]model.ConsumerID, 60)
	for i := range consumers {
		consumers[i] = model.ConsumerID(i)
	}
	store, _ := newStoreWithRecords(t, deadDir, consumers)
	if _, err := store.RotateIfDirty(); err != nil {
		t.Fatal(err)
	}
	seq := store.SealedSegmentSeqs()[0]
	store.Close()

	aliveMux := http.NewServeMux()
	aliveMux.HandleFunc(HealthzPath, func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	aliveSrv := httptest.NewServer(aliveMux)
	defer aliveSrv.Close()

	reg := satisfaction.NewRegistry(satisfaction.DefaultWindow)
	cfg := fastConfig(Peer{ID: "b"},
		Peer{ID: "dead", Addr: "http://dead.invalid"},
		Peer{ID: "c", Addr: aliveSrv.URL})
	cfg.StateDir = t.TempDir()
	cfg.Registry = reg
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Pre-seed the replica dir as if "dead" had shipped its journal.
	data, err := os.ReadFile(persist.SegmentFilePath(deadDir, seq))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AcceptSegment("dead", seq, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}

	n.Start()
	waitFor(t, "dead peer down", func() bool { return n.mem.health("dead") == HealthDown })
	waitFor(t, "replay recorded", func() bool {
		st := n.Status()
		return len(st.Replicas) == 1 && st.Replicas[0].Replayed > 0
	})

	live := n.LiveRing()
	if nodes := live.Nodes(); len(nodes) != 2 {
		t.Fatalf("live ring = %v, want b and c", nodes)
	}
	present := make(map[model.ConsumerID]bool)
	for _, c := range reg.ConsumerIDs() {
		present[c] = true
	}
	kept, skipped := 0, 0
	for _, c := range consumers {
		has := present[c]
		if live.Owner(c) == "b" {
			if !has {
				t.Errorf("consumer %d owned by b but not replayed", c)
			}
			kept++
		} else {
			if has {
				t.Errorf("consumer %d owned by %s but replayed into b", c, live.Owner(c))
			}
			skipped++
		}
	}
	if kept == 0 || skipped == 0 {
		t.Fatalf("filter vacuous: kept %d skipped %d", kept, skipped)
	}
	if got := n.Status().Replicas[0].Replayed; got != kept {
		t.Errorf("replayed count = %d, want %d", got, kept)
	}
}

// TestAcceptSegmentValidation: torn bodies, wrong seqs, and unknown
// origins are refused; re-shipping a held segment is a quiet success.
func TestAcceptSegmentValidation(t *testing.T) {
	srcDir := t.TempDir()
	store, _ := newStoreWithRecords(t, srcDir, []model.ConsumerID{1, 2, 3})
	if _, err := store.RotateIfDirty(); err != nil {
		t.Fatal(err)
	}
	seq := store.SealedSegmentSeqs()[0]
	store.Close()
	data, err := os.ReadFile(persist.SegmentFilePath(srcDir, seq))
	if err != nil {
		t.Fatal(err)
	}

	cfg := fastConfig(Peer{ID: "b"}, Peer{ID: "a", Addr: "http://a.invalid"})
	cfg.StateDir = t.TempDir()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	if err := n.AcceptSegment("stranger", seq, bytes.NewReader(data)); err == nil {
		t.Error("accepted a segment from an origin not on the ring")
	}
	if err := n.AcceptSegment("b", seq, bytes.NewReader(data)); err == nil {
		t.Error("accepted a segment from self as origin")
	}
	if err := n.AcceptSegment("a", seq+9, bytes.NewReader(data)); err == nil {
		t.Error("accepted a segment whose header seq disagrees with the transfer")
	}
	if err := n.AcceptSegment("a", seq, bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Error("accepted a torn segment")
	}
	if held, _ := n.HeldSegments("a"); len(held) != 0 {
		t.Fatalf("rejected transfers left replicas behind: %v", held)
	}
	if err := n.AcceptSegment("a", seq, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if err := n.AcceptSegment("a", seq, bytes.NewReader(data)); err != nil {
		t.Fatalf("re-ship of held segment = %v, want idempotent success", err)
	}
	held, _ := n.HeldSegments("a")
	if len(held) != 1 || held[0] != seq {
		t.Fatalf("held = %v, want [%d]", held, seq)
	}
}
