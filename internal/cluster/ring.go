// Package cluster turns independent sbqad daemons into a mediation
// cluster: a consistent-hash ring over consumer IDs decides which node
// owns each consumer's queries and satisfaction memory, a heartbeat
// membership layer tracks peer health and shrinks the routing ring when
// a node dies, and a WAL replicator ships sealed journal segments to
// ring followers so a failed node's consumers arrive at their new owner
// with satisfaction memory intact.
//
// The package deliberately stops short of consensus: the member list is
// static configuration, there is no leader, and rebalancing is the
// ring's arithmetic consequence of a node leaving — not a coordinated
// data migration.
package cluster

import (
	"encoding/binary"
	"sort"

	"sbqa/internal/model"
)

// DefaultVNodes is the number of virtual points each node contributes
// to the ring. 64 points per node keeps the largest/smallest ownership
// share within a few percent for small clusters while the full ring
// stays tiny (a 16-node cluster is 1024 points, ~24 KiB).
const DefaultVNodes = 64

// The ring hashes with FNV-1a/64 implemented by hand rather than via
// hash/fnv or maphash: ownership must be identical across Go versions,
// architectures, and processes — a follower replaying a dead peer's WAL
// filters records by "does the ring assign this consumer to me now",
// and two nodes disagreeing on that predicate would duplicate or drop
// satisfaction memory.
const (
	fnvOffset64 = uint64(14695981039346656037)
	fnvPrime64  = uint64(1099511628211)
)

// fnvBytes folds b into the running FNV-1a state h.
func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// fnvU64 folds v, big-endian, into the running FNV-1a state h.
func fnvU64(h uint64, v uint64) uint64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return fnvBytes(h, b[:])
}

// mix64 is the MurmurHash3 64-bit finalizer. Raw FNV-1a barely diffuses
// small sequential inputs — consecutive consumer IDs differ in a couple
// of low bytes and land adjacent on the circle, piling every consumer
// into one node's arc. The finalizer avalanches those bits across the
// whole word; its constants are fixed here so the keyspace never shifts
// under a stdlib change.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// KeyHash maps a consumer onto the ring's keyspace: FNV-1a over the
// 8-byte big-endian ID, then finalized for avalanche (see mix64).
func KeyHash(c model.ConsumerID) uint64 {
	return mix64(fnvU64(fnvOffset64, uint64(int64(c))))
}

// ringPoint is one virtual node: a position on the keyspace circle and
// the node that owns the arc ending at it.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node IDs.
// Build a new one on membership change; readers hold it via an atomic
// pointer and never see a half-updated ring.
type Ring struct {
	nodes  []string // distinct node IDs, sorted
	points []ringPoint
}

// NewRing builds a ring from node IDs with vnodes virtual points each
// (DefaultVNodes when vnodes <= 0). Duplicate IDs collapse; the input
// order never matters — two rings built from permutations of the same
// set behave identically.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	distinct := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		distinct = append(distinct, n)
	}
	sort.Strings(distinct)
	r := &Ring{nodes: distinct}
	r.points = make([]ringPoint, 0, len(distinct)*vnodes)
	for _, n := range distinct {
		base := fnvBytes(fnvOffset64, []byte(n))
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: mix64(fnvU64(base, uint64(v))), node: n})
		}
	}
	// Ties broken by node ID so a hash collision between two nodes'
	// points still yields one deterministic owner everywhere.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's distinct node IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len reports the number of distinct nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Contains reports whether node is on the ring.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// ownerIdx finds the first point at or clockwise after h, wrapping.
func (r *Ring) ownerIdx(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// OwnerOfHash returns the node owning keyspace position h, or "" on an
// empty ring.
func (r *Ring) OwnerOfHash(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.ownerIdx(h)].node
}

// Owner returns the node that owns consumer c, or "" on an empty ring.
func (r *Ring) Owner(c model.ConsumerID) string {
	return r.OwnerOfHash(KeyHash(c))
}

// Followers returns, sorted, the distinct nodes that immediately
// succeed any of node's points — the nodes that inherit parts of its
// keyspace if it leaves, and therefore the replication targets for its
// WAL. Empty when node is absent or alone on the ring.
func (r *Ring) Followers(node string) []string {
	if len(r.points) == 0 || !r.Contains(node) {
		return nil
	}
	set := make(map[string]bool)
	for i, p := range r.points {
		if p.node != node {
			continue
		}
		for j := 1; j < len(r.points); j++ {
			q := r.points[(i+j)%len(r.points)]
			if q.node != node {
				set[q.node] = true
				break
			}
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
