package cluster

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sbqa/internal/event"
	"sbqa/internal/model"
	"sbqa/internal/persist"
	"sbqa/internal/satisfaction"
)

// Typed routing failures. The gateway maps these onto 503 responses
// with machine-readable codes so a client can distinguish "retry
// against the right node" from "the owner is gone".
var (
	// ErrNotOwner: this node does not own the consumer and must not
	// serve the request locally (returned by the submit guard and by a
	// forward receiver whose ring disagrees with the sender's).
	ErrNotOwner = errors.New("cluster: consumer owned by another node")
	// ErrPeerDown: the consumer's owner is known-dead and its keyspace
	// has not yet been re-absorbed by this node.
	ErrPeerDown = errors.New("cluster: owning peer is down")
)

// HTTP paths of the intra-cluster surface. Exported so the daemon
// mounts its handlers and this package's clients build requests from
// one definition.
const (
	// HealthzPath is probed by peers' heartbeats.
	HealthzPath = "/v1/healthz"
	// SegmentsPath serves WAL replication: GET lists the segment seqs
	// held for ?origin=<node>, POST ?origin=<node>&seq=<n> stores one
	// segment (raw journal bytes as the body).
	SegmentsPath = "/v1/internal/segments"
	// ForwardPath accepts query submissions forwarded from a non-owner
	// gateway; ForwardConsumersPath the same for consumer registration.
	ForwardPath          = "/v1/internal/forward"
	ForwardConsumersPath = "/v1/internal/forward/consumers"
	// ForwardedFromHeader carries the sender's node ID on a forwarded
	// request. Its presence means "do not forward again": a receiver
	// that still disagrees about ownership answers ErrNotOwner rather
	// than risking a routing loop between nodes with divergent rings.
	ForwardedFromHeader = "X-Sbqa-Forwarded-From"
)

// Peer identifies one cluster member.
type Peer struct {
	ID   string `json:"id"`
	Addr string `json:"addr"` // base URL, e.g. http://10.0.0.7:8080
}

// SegmentSource is the slice of the durability store the replicator
// consumes. *persist.Store satisfies it.
type SegmentSource interface {
	SealedSegmentSeqs() []uint64
	OpenSealedSegment(seq uint64) (io.ReadCloser, int64, error)
	ActiveSegmentBytes() int64
	RotateIfDirty() (bool, error)
}

// Config assembles a cluster node. Self and at least an ID are
// mandatory; everything else has serviceable defaults.
type Config struct {
	Self  Peer
	Peers []Peer // remote members; Self must not appear here

	// VNodes per node on the ring (DefaultVNodes when 0).
	VNodes int

	// HeartbeatInterval between probe rounds (default 1s) and
	// HeartbeatTimeout per probe (default half the interval).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// SuspectAfter consecutive probe failures mark a peer Suspect
	// (default 2); DownAfter mark it Down and shrink the routing ring
	// (default 4).
	SuspectAfter int
	DownAfter    int

	// ReplicateInterval between WAL shipping rounds (default 500ms).
	ReplicateInterval time.Duration
	// Store is the local journal to ship; StateDir its directory (used
	// to stat sealed segments for lag accounting). Both empty disables
	// outbound replication.
	Store    SegmentSource
	StateDir string
	// ReplicaDir holds shipped segments, one subdirectory per origin
	// node (default StateDir/replica; required if segments are to be
	// accepted at all).
	ReplicaDir string
	// Registry receives the failover replay when an origin dies; nil
	// disables replay (segments are still stored).
	Registry *satisfaction.Registry

	// Observer receives PeerChange events; nil for none.
	Observer event.Observer
	// Client issues heartbeats and segment transfers; nil for a
	// dedicated default client.
	Client *http.Client
	// Logf for operational messages; nil for silence.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.VNodes <= 0 {
		out.VNodes = DefaultVNodes
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = time.Second
	}
	if out.HeartbeatTimeout <= 0 {
		out.HeartbeatTimeout = out.HeartbeatInterval / 2
	}
	if out.SuspectAfter <= 0 {
		out.SuspectAfter = 2
	}
	if out.DownAfter <= out.SuspectAfter {
		out.DownAfter = out.SuspectAfter + 2
	}
	if out.ReplicateInterval <= 0 {
		out.ReplicateInterval = 500 * time.Millisecond
	}
	if out.ReplicaDir == "" && out.StateDir != "" {
		out.ReplicaDir = filepath.Join(out.StateDir, "replica")
	}
	if out.Observer == nil {
		out.Observer = event.Nop{}
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Node is one member's view of the cluster: the static full ring, the
// health-trimmed live ring, and the WAL replication machinery.
type Node struct {
	cfg  Config
	full *Ring
	mem  *membership
	tr   *transport
	repl *replicator

	startOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	closed    atomic.Bool

	replayMu   sync.Mutex
	replayed   map[string]int // origin -> records replayed on failover
	replayErrs map[string]string
}

// New validates cfg and builds a node. The node is inert until Start.
func New(cfg Config) (*Node, error) {
	if cfg.Self.ID == "" {
		return nil, errors.New("cluster: Self.ID is required")
	}
	seen := map[string]bool{cfg.Self.ID: true}
	ids := []string{cfg.Self.ID}
	for _, p := range cfg.Peers {
		if p.ID == "" || p.Addr == "" {
			return nil, fmt.Errorf("cluster: peer %+v needs both id and addr", p)
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", p.ID)
		}
		seen[p.ID] = true
		ids = append(ids, p.ID)
	}
	c := cfg.withDefaults()
	n := &Node{
		cfg:        c,
		full:       NewRing(ids, c.VNodes),
		stop:       make(chan struct{}),
		replayed:   make(map[string]int),
		replayErrs: make(map[string]string),
	}
	n.tr = &transport{client: c.Client, self: c.Self.ID}
	n.mem = newMembership(c.Self.ID, c.Peers, c.VNodes, c.SuspectAfter, c.DownAfter, n.onPeerTransition)
	if c.Store != nil && c.StateDir != "" {
		n.repl = newReplicator(n)
	}
	return n, nil
}

// Start launches the heartbeat and replication loops. Idempotent.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		if len(n.cfg.Peers) > 0 {
			n.wg.Add(1)
			go n.heartbeatLoop()
		}
		if n.repl != nil && len(n.cfg.Peers) > 0 {
			n.wg.Add(1)
			go n.repl.loop()
		}
	})
}

// Close stops the loops and waits for them. Idempotent.
func (n *Node) Close() {
	if n.closed.CompareAndSwap(false, true) {
		close(n.stop)
	}
	n.wg.Wait()
}

// Self returns this node's identity.
func (n *Node) Self() Peer { return n.cfg.Self }

// FullRing returns the configured (health-blind) ring.
func (n *Node) FullRing() *Ring { return n.full }

// LiveRing returns the current routing ring (Down peers excluded).
func (n *Node) LiveRing() *Ring { return n.mem.liveRing() }

// Route resolves the owner of consumer c on the live ring. self is
// true when this node must serve the request locally. A non-nil error
// is ErrPeerDown: the owner exists but is unreachable (only possible
// transiently, while a Down transition is being absorbed).
func (n *Node) Route(c model.ConsumerID) (owner Peer, self bool, err error) {
	id := n.mem.liveRing().Owner(c)
	if id == "" || id == n.cfg.Self.ID {
		return n.cfg.Self, true, nil
	}
	p, health, ok := n.mem.peerInfo(id)
	if !ok {
		return n.cfg.Self, true, nil
	}
	if health == HealthDown {
		return p, false, ErrPeerDown
	}
	return p, false, nil
}

// SubmitGuard returns the ownership predicate the gateway installs on
// the live engine: every submission that is not this node's to mediate
// fails with ErrNotOwner before touching a shard queue.
func (n *Node) SubmitGuard() func(model.Query) error {
	return func(q model.Query) error {
		if _, self, _ := n.Route(q.Consumer); !self {
			return ErrNotOwner
		}
		return nil
	}
}

// onPeerTransition runs on every membership state change: emit the
// typed event, log, and on a Down transition replay the dead peer's
// replicated WAL for the consumer ranges this node just inherited.
func (n *Node) onPeerTransition(p Peer, from, to Health, lastErr string) {
	n.cfg.Logf("cluster: peer %s (%s) %s -> %s %s", p.ID, p.Addr, from, to, lastErr)
	n.cfg.Observer.OnPeerChange(event.PeerChange{
		Node: p.ID,
		Addr: p.Addr,
		From: from.String(),
		To:   to.String(),
		Err:  lastErr,
	})
	if to == HealthDown {
		n.failover(p.ID)
	}
}

// failover replays origin's replicated WAL segments — filtered to the
// consumers the live ring now assigns to this node — into the local
// satisfaction registry. At most once per origin per process lifetime:
// a flapping peer must not replay twice (satisfaction windows would
// double-count outcomes), so a second Down transition serves whatever
// memory the first replay restored.
func (n *Node) failover(origin string) {
	if n.cfg.Registry == nil || n.cfg.ReplicaDir == "" {
		return
	}
	n.replayMu.Lock()
	defer n.replayMu.Unlock()
	if _, done := n.replayed[origin]; done {
		return
	}
	live := n.mem.liveRing()
	mine := func(c model.ConsumerID) bool { return live.Owner(c) == n.cfg.Self.ID }
	keep := func(rec *persist.Record) bool {
		switch rec.Type {
		case persist.RecordOutcome:
			return mine(rec.Outcome.Consumer)
		case persist.RecordForgetConsumer:
			return mine(model.ConsumerID(rec.Forget))
		default:
			// Policy and provider records describe the dead node's own
			// configuration and its provider-side memory; neither maps
			// onto a consumer range, so a range takeover skips them.
			return false
		}
	}
	dir := filepath.Join(n.cfg.ReplicaDir, origin)
	replayed, err := persist.ReplayDir(dir, keep, n.cfg.Registry)
	n.replayed[origin] = replayed
	if err != nil {
		n.replayErrs[origin] = err.Error()
		n.cfg.Logf("cluster: failover replay of %s: %v (after %d records)", origin, err, replayed)
		return
	}
	n.cfg.Logf("cluster: peer %s down: replayed %d records into local satisfaction memory", origin, replayed)
}

// HeldSegments lists the replicated segment seqs stored for origin —
// the receiving half of the shipping handshake (a restarting owner
// seeds its shipped-set from this).
func (n *Node) HeldSegments(origin string) ([]uint64, error) {
	if n.cfg.ReplicaDir == "" {
		return nil, nil
	}
	return persist.ScanSegmentDir(filepath.Join(n.cfg.ReplicaDir, origin))
}

// AcceptSegment stores one shipped WAL segment for origin. The body is
// validated (framing + checksums + header seq) before an atomic rename
// into place; a segment already held is accepted silently so shipping
// is idempotent.
func (n *Node) AcceptSegment(origin string, seq uint64, body io.Reader) error {
	if n.cfg.ReplicaDir == "" {
		return errors.New("cluster: no replica dir configured")
	}
	if origin == "" || origin == n.cfg.Self.ID || !n.full.Contains(origin) {
		return fmt.Errorf("cluster: refusing segment from unknown origin %q", origin)
	}
	return acceptSegmentFile(filepath.Join(n.cfg.ReplicaDir, origin), seq, body)
}

// heartbeatLoop probes every peer each interval, first round instantly
// so a booting cluster converges before the first tick.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		n.probeAll()
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
	}
}

func (n *Node) probeAll() {
	var wg sync.WaitGroup
	for _, p := range n.cfg.Peers {
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			rtt, err := n.tr.probe(n.cfg.HeartbeatTimeout, p.Addr)
			n.mem.observe(p.ID, rtt, err)
		}(p)
	}
	wg.Wait()
}

// PeerStatus is one peer's health and replication position as seen by
// this node.
type PeerStatus struct {
	Peer
	Health      string    `json:"health"`
	Failures    int       `json:"failures,omitempty"`
	LastSeen    time.Time `json:"last_seen,omitzero"`
	RTTMillis   float64   `json:"rtt_ms,omitempty"`
	LastError   string    `json:"last_error,omitempty"`
	Follower    bool      `json:"follower"` // a WAL shipping target of this node
	LagSegments int       `json:"lag_segments"`
	LagBytes    int64     `json:"lag_bytes"`
	Shipped     uint64    `json:"shipped_segments"`
}

// ReplicaStatus describes segments held locally for one origin node.
type ReplicaStatus struct {
	Origin    string `json:"origin"`
	Segments  int    `json:"segments"`
	Bytes     int64  `json:"bytes"`
	Replayed  int    `json:"replayed_records,omitempty"`
	ReplayErr string `json:"replay_error,omitempty"`
}

// Status is the /v1/cluster payload.
type Status struct {
	Self     Peer            `json:"self"`
	VNodes   int             `json:"vnodes"`
	Nodes    []string        `json:"nodes"`      // full ring
	Live     []string        `json:"live_nodes"` // routing ring
	Peers    []PeerStatus    `json:"peers"`
	Replicas []ReplicaStatus `json:"replicas,omitempty"`
}

// Status snapshots the node for the control surface and the metrics
// endpoint.
func (n *Node) Status() Status {
	st := Status{
		Self:   n.cfg.Self,
		VNodes: n.cfg.VNodes,
		Nodes:  n.full.Nodes(),
		Live:   n.mem.liveRing().Nodes(),
	}
	var lag map[string]replLag
	followers := map[string]bool{}
	if n.repl != nil {
		lag = n.repl.lag()
		for _, f := range n.full.Followers(n.cfg.Self.ID) {
			followers[f] = true
		}
	}
	for _, p := range n.cfg.Peers {
		ps := n.mem.status(p.ID)
		ps.Follower = followers[p.ID]
		if l, ok := lag[p.ID]; ok {
			ps.LagSegments, ps.LagBytes, ps.Shipped = l.segments, l.bytes, l.shipped
		}
		st.Peers = append(st.Peers, ps)
	}
	if n.cfg.ReplicaDir != "" {
		st.Replicas = n.replicaStatuses()
	}
	return st
}

func (n *Node) replicaStatuses() []ReplicaStatus {
	var out []ReplicaStatus
	for _, origin := range n.full.Nodes() {
		if origin == n.cfg.Self.ID {
			continue
		}
		dir := filepath.Join(n.cfg.ReplicaDir, origin)
		seqs, err := persist.ScanSegmentDir(dir)
		if err != nil || len(seqs) == 0 {
			continue
		}
		rs := ReplicaStatus{Origin: origin, Segments: len(seqs)}
		for _, seq := range seqs {
			if fi, err := statFile(persist.SegmentFilePath(dir, seq)); err == nil {
				rs.Bytes += fi
			}
		}
		n.replayMu.Lock()
		rs.Replayed = n.replayed[origin]
		rs.ReplayErr = n.replayErrs[origin]
		n.replayMu.Unlock()
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}
