package stats

import (
	"fmt"
	"io"
	"sort"
)

// Point is one sample of a time series: a value observed at a simulation
// time.
type Point struct {
	T float64
	V float64
}

// TimeSeries records (time, value) samples, e.g. mean provider satisfaction
// measured every sampling interval. Samples are expected to arrive in
// non-decreasing time order (the simulator guarantees this).
type TimeSeries struct {
	Name   string
	Points []Point
}

// NewTimeSeries returns an empty named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{Name: name} }

// Add appends a sample.
func (ts *TimeSeries) Add(t, v float64) { ts.Points = append(ts.Points, Point{T: t, V: v}) }

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.Points) }

// Last returns the most recent sample, or a zero Point if empty.
func (ts *TimeSeries) Last() Point {
	if len(ts.Points) == 0 {
		return Point{}
	}
	return ts.Points[len(ts.Points)-1]
}

// At returns the value in effect at time t (the last sample with T <= t);
// ok is false if t precedes the first sample.
func (ts *TimeSeries) At(t float64) (v float64, ok bool) {
	i := sort.Search(len(ts.Points), func(i int) bool { return ts.Points[i].T > t })
	if i == 0 {
		return 0, false
	}
	return ts.Points[i-1].V, true
}

// MeanValue returns the unweighted mean of the sampled values.
func (ts *TimeSeries) MeanValue() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range ts.Points {
		sum += p.V
	}
	return sum / float64(len(ts.Points))
}

// TailMean returns the mean of the last fraction frac (0,1] of samples —
// the steady-state estimate the experiment tables report.
func (ts *TimeSeries) TailMean(frac float64) float64 {
	n := len(ts.Points)
	if n == 0 {
		return 0
	}
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	start := n - int(float64(n)*frac)
	if start >= n {
		start = n - 1
	}
	var sum float64
	for _, p := range ts.Points[start:] {
		sum += p.V
	}
	return sum / float64(n-start)
}

// WriteCSV writes "t,<name>" rows to w (with a header row).
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "t,%s\n", ts.Name); err != nil {
		return err
	}
	for _, p := range ts.Points {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", p.T, p.V); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVMulti writes multiple series sharing a time axis as a single CSV
// table. Series are aligned by sample index; they must have equal lengths
// (the scenario samplers guarantee this). It returns an error on length
// mismatch.
func WriteCSVMulti(w io.Writer, series ...*TimeSeries) error {
	if len(series) == 0 {
		return nil
	}
	n := series[0].Len()
	header := "t"
	for _, s := range series {
		if s.Len() != n {
			return fmt.Errorf("stats: series %q has %d points, want %d", s.Name, s.Len(), n)
		}
		header += "," + s.Name
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%.6f", series[0].Points[i].T); err != nil {
			return err
		}
		for _, s := range series {
			if _, err := fmt.Fprintf(w, ",%.6f", s.Points[i].V); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Histogram counts observations in equal-width bins over [Lo, Hi); values
// outside the range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Bins   []int64
	N      int64
}

// NewHistogram builds a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.N++
}

// Fraction returns the share of observations falling in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 || i < 0 || i >= len(h.Bins) {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.N)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + width*(float64(i)+0.5)
}
