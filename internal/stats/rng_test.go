package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedIndependence(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("nearby seeds produced %d identical draws out of 1000", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("zero seed generated only %d distinct values in 100 draws", len(seen))
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split stream matched parent %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) bucket %d count %d far from uniform expectation 10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(6)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Errorf("normal stddev = %v, want ~1", w.StdDev())
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(8)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.ExpFloat64())
	}
	if math.Abs(w.Mean()-1) > 0.02 {
		t.Errorf("exp(1) mean = %v, want ~1", w.Mean())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleKProperties(t *testing.T) {
	r := NewRNG(10)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(50)
		k := 1 + r.Intn(60) // may exceed n
		got := r.SampleK(n, k, nil)
		wantLen := k
		if k > n {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("SampleK(%d,%d) returned %d values", n, k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("SampleK(%d,%d) out-of-range value %d", n, k, v)
			}
			if seen[v] {
				t.Fatalf("SampleK(%d,%d) duplicate value %d", n, k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleKUniformity(t *testing.T) {
	// Each of 10 items should appear in a 3-subset with probability 3/10.
	r := NewRNG(11)
	counts := make([]int, 10)
	const trials = 30000
	var buf []int
	for i := 0; i < trials; i++ {
		buf = r.SampleK(10, 3, buf)
		for _, v := range buf {
			counts[v]++
		}
	}
	want := float64(trials) * 0.3
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.08 {
			t.Errorf("item %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestShuffleIntsPreservesElements(t *testing.T) {
	r := NewRNG(12)
	p := []int{1, 2, 3, 4, 5, 6}
	r.ShuffleInts(p)
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 21 {
		t.Errorf("shuffle changed contents: %v", p)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}
