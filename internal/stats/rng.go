// Package stats provides the statistical substrate used across the SbQA
// reproduction: a deterministic, splittable random number generator, the
// workload distributions the experiments need (exponential, Zipf, Pareto,
// normal), online summaries with percentiles, fairness metrics (Gini,
// Jain), histograms, and time series.
//
// Everything is deterministic under a fixed seed so that every experiment in
// EXPERIMENTS.md can be replayed bit-for-bit.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on the
// splitmix64/xoshiro256** construction. It is intentionally independent of
// math/rand so that simulation results cannot drift across Go releases.
//
// RNG is not safe for concurrent use; derive one stream per goroutine with
// Split.
type RNG struct {
	s [4]uint64

	// sampleSeen is SampleK's membership scratch, reused across calls so the
	// mediation hot path draws samples without allocating. It is not part of
	// the generator state (State/Restore ignore it) and holds no data across
	// calls — SampleK resets exactly the entries it set before returning.
	sampleSeen []bool
}

// splitmix64 advances a 64-bit state and returns a mixed output; used for
// seeding so that nearby seeds yield unrelated streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Any seed, including zero, is
// valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro's state must not be all-zero; splitmix cannot produce four
	// zero outputs in a row, but keep the guarantee explicit.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// State returns the generator's full internal state. Together with Restore
// it lets a persisted system resume a sampling stream exactly where it
// stopped — the durability layer snapshots allocator RNGs so a warm restart
// continues the same draw sequence bit-for-bit.
func (r *RNG) State() [4]uint64 { return r.s }

// Restore overwrites the generator's state with one previously returned by
// State. An all-zero state (invalid for xoshiro) is replaced by the fixed
// non-zero fallback NewRNG guarantees, so a corrupted snapshot can degrade
// the stream but never wedge the generator.
func (r *RNG) Restore(state [4]uint64) {
	if state[0]|state[1]|state[2]|state[3] == 0 {
		state[0] = 0x9e3779b97f4a7c15
	}
	r.s = state
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's. The receiver advances by one draw.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded draw.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential deviate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher–Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleK fills dst with k distinct uniform indices from [0, n) using
// Floyd's algorithm, and returns dst. If k >= n it returns all indices
// 0..n-1 in random order. dst is reused if it has capacity.
func (r *RNG) SampleK(n, k int, dst []int) []int {
	dst = dst[:0]
	if k >= n {
		for i := 0; i < n; i++ {
			dst = append(dst, i)
		}
		r.ShuffleInts(dst)
		return dst
	}
	if cap(r.sampleSeen) < n {
		r.sampleSeen = make([]bool, n)
	}
	seen := r.sampleSeen[:n]
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if seen[t] {
			t = j
		}
		seen[t] = true
		dst = append(dst, t)
	}
	// Reset only the entries this call set (they are exactly dst's values),
	// leaving the scratch clean for the next call without an O(n) clear.
	for _, t := range dst {
		seen[t] = false
	}
	// Floyd's method yields a uniform subset but a biased order; shuffle.
	r.ShuffleInts(dst)
	return dst
}
