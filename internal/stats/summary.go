package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar observations and reports count, mean, variance,
// min/max, and exact percentiles. It keeps all samples (experiments here are
// bounded to a few hundred thousand observations), which keeps percentiles
// exact and the implementation dependency-free.
type Summary struct {
	samples []float64
	sum     float64
	sumSq   float64
	min     float64
	max     float64
	sorted  bool
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sumSq += v * v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.sorted = false
}

// Count returns the number of observations.
func (s *Summary) Count() int { return len(s.samples) }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Var returns the population variance, or 0 for fewer than 2 observations.
func (s *Summary) Var() float64 {
	n := float64(len(s.samples))
	if n < 2 {
		return 0
	}
	m := s.sum / n
	v := s.sumSq/n - m*m
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.max
}

// Percentile returns the p-th percentile (p in [0, 100]) using linear
// interpolation between closest ranks; 0 for an empty summary.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.samples[lo]
	}
	frac := rank - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Median returns the 50th percentile.
func (s *Summary) Median() float64 { return s.Percentile(50) }

// String renders a one-line digest for logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.Count(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99), s.Max())
}

// Welford is a constant-memory mean/variance accumulator for hot paths that
// cannot afford Summary's sample retention.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// Gini returns the Gini coefficient of the values: 0 = perfectly equal,
// values near 1 = one participant holds everything. Values must be
// non-negative; the result of an empty or all-zero input is 0.
//
// The experiments use Gini over participant satisfactions and utilizations
// as the fairness measure.
func Gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	// Normalize by the maximum to avoid overflow on extreme inputs; the
	// coefficient is scale-invariant so this does not change the result.
	scale := sorted[n-1]
	if scale <= 0 {
		return 0
	}
	var cum, weighted float64
	for i, v := range sorted {
		if v < 0 {
			v = 0
		}
		v /= scale
		cum += v
		weighted += v * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	nf := float64(n)
	return (2*weighted - (nf+1)*cum) / (nf * cum)
}

// JainIndex returns Jain's fairness index of the values: 1 = perfectly
// equal, 1/n = maximally unfair. Empty input yields 1.
func JainIndex(values []float64) float64 {
	if len(values) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(values)) * sumSq)
}

// MeanOf returns the arithmetic mean of the values (0 for empty input).
func MeanOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// MinOf returns the smallest value (0 for empty input).
func MinOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// MaxOf returns the largest value (0 for empty input).
func MaxOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDevOf returns the population standard deviation of the values.
func StdDevOf(values []float64) float64 {
	n := float64(len(values))
	if n < 2 {
		return 0
	}
	m := MeanOf(values)
	var acc float64
	for _, v := range values {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / n)
}
