package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTimeSeriesBasics(t *testing.T) {
	ts := NewTimeSeries("sat")
	if ts.Len() != 0 {
		t.Error("new series not empty")
	}
	if p := ts.Last(); p.T != 0 || p.V != 0 {
		t.Error("Last on empty series should be zero Point")
	}
	ts.Add(0, 0.5)
	ts.Add(1, 0.6)
	ts.Add(2, 0.7)
	if ts.Len() != 3 {
		t.Errorf("Len = %d", ts.Len())
	}
	if p := ts.Last(); p.T != 2 || p.V != 0.7 {
		t.Errorf("Last = %+v", p)
	}
	if got := ts.MeanValue(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("MeanValue = %v", got)
	}
}

func TestTimeSeriesAt(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Add(1, 10)
	ts.Add(3, 30)
	if _, ok := ts.At(0.5); ok {
		t.Error("At before first sample should be !ok")
	}
	if v, ok := ts.At(1); !ok || v != 10 {
		t.Errorf("At(1) = %v,%v", v, ok)
	}
	if v, ok := ts.At(2.9); !ok || v != 10 {
		t.Errorf("At(2.9) = %v,%v", v, ok)
	}
	if v, ok := ts.At(100); !ok || v != 30 {
		t.Errorf("At(100) = %v,%v", v, ok)
	}
}

func TestTailMean(t *testing.T) {
	ts := NewTimeSeries("x")
	for i := 1; i <= 10; i++ {
		ts.Add(float64(i), float64(i))
	}
	if got := ts.TailMean(0.5); math.Abs(got-8) > 1e-12 { // mean of 6..10
		t.Errorf("TailMean(0.5) = %v, want 8", got)
	}
	if got := ts.TailMean(1); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("TailMean(1) = %v, want 5.5", got)
	}
	// Degenerate fractions fall back to full mean; tiny fraction = last point.
	if got := ts.TailMean(-1); math.Abs(got-5.5) > 1e-12 {
		t.Errorf("TailMean(-1) = %v, want 5.5", got)
	}
	if got := ts.TailMean(0.01); math.Abs(got-10) > 1e-12 {
		t.Errorf("TailMean(0.01) = %v, want 10", got)
	}
	empty := NewTimeSeries("e")
	if empty.TailMean(0.5) != 0 {
		t.Error("TailMean on empty series should be 0")
	}
}

func TestWriteCSV(t *testing.T) {
	ts := NewTimeSeries("sat")
	ts.Add(0, 1)
	ts.Add(1, 2)
	var sb strings.Builder
	if err := ts.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "t,sat\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "1.000000,2.000000") {
		t.Errorf("missing row: %q", out)
	}
}

func TestWriteCSVMulti(t *testing.T) {
	a := NewTimeSeries("a")
	b := NewTimeSeries("b")
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(0, 3)
	b.Add(1, 4)
	var sb strings.Builder
	if err := WriteCSVMulti(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "t,a,b\n") {
		t.Errorf("bad header: %q", out)
	}
	if !strings.Contains(out, "1.000000,2.000000,4.000000") {
		t.Errorf("bad row: %q", out)
	}
	b.Add(2, 5)
	if err := WriteCSVMulti(&sb, a, b); err == nil {
		t.Error("mismatched lengths should error")
	}
	if err := WriteCSVMulti(&sb); err != nil {
		t.Errorf("no series should be a no-op, got %v", err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bins[i] != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Bins[i])
		}
		if math.Abs(h.Fraction(i)-0.1) > 1e-12 {
			t.Errorf("Fraction(%d) = %v", i, h.Fraction(i))
		}
	}
	// Clamping.
	h.Add(-5)
	h.Add(100)
	if h.Bins[0] != 2 || h.Bins[9] != 2 {
		t.Errorf("clamped counts wrong: %v", h.Bins)
	}
	if got, want := h.BinCenter(0), 0.5; got != want {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if h.Fraction(-1) != 0 || h.Fraction(10) != 0 {
		t.Error("out-of-range Fraction should be 0")
	}
	// Degenerate constructor arguments are repaired.
	d := NewHistogram(5, 5, 0)
	d.Add(5)
	if d.N != 1 || len(d.Bins) != 1 {
		t.Error("degenerate histogram not repaired")
	}
}
