package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty summary should report zeros")
	}
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got, want := s.Var(), 5.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Var = %v, want %v", got, want)
	}
}

func TestSummaryPercentiles(t *testing.T) {
	s := NewSummary()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p, want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {95, 95.05}, {25, 25.75},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Median = %v", got)
	}
}

func TestSummaryAddAfterPercentile(t *testing.T) {
	// Percentile sorts in place; subsequent Adds must still work.
	s := NewSummary()
	s.Add(3)
	s.Add(1)
	_ = s.Percentile(50)
	s.Add(2)
	if got := s.Percentile(50); got != 2 {
		t.Errorf("median after interleaved add = %v, want 2", got)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestWelfordMatchesSummary(t *testing.T) {
	r := NewRNG(20)
	s := NewSummary()
	var w Welford
	for i := 0; i < 10000; i++ {
		v := r.NormFloat64()*3 + 1
		s.Add(v)
		w.Add(v)
	}
	if math.Abs(s.Mean()-w.Mean()) > 1e-9 {
		t.Errorf("means differ: %v vs %v", s.Mean(), w.Mean())
	}
	if math.Abs(s.Var()-w.Var()) > 1e-6 {
		t.Errorf("variances differ: %v vs %v", s.Var(), w.Var())
	}
	if w.Count() != 10000 {
		t.Errorf("Count = %d", w.Count())
	}
}

func TestGiniKnownValues(t *testing.T) {
	tests := []struct {
		name   string
		in     []float64
		want   float64
		within float64
	}{
		{"empty", nil, 0, 0},
		{"equal", []float64{5, 5, 5, 5}, 0, 1e-12},
		{"all-zero", []float64{0, 0, 0}, 0, 0},
		{"one-holds-all", []float64{0, 0, 0, 100}, 0.75, 1e-12},
		{"two-values", []float64{1, 3}, 0.25, 1e-12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Gini(tt.in); math.Abs(got-tt.want) > tt.within {
				t.Errorf("Gini(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestGiniProperties(t *testing.T) {
	// Gini in [0,1) and scale-invariant.
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes bounded so the scale-invariance probe below
			// cannot overflow before reaching Gini.
			vals = append(vals, math.Mod(math.Abs(v), 1e9))
		}
		g := Gini(vals)
		if g < 0 || g >= 1 {
			return false
		}
		scaled := make([]float64, len(vals))
		for i, v := range vals {
			scaled[i] = v * 3.7
		}
		return math.Abs(Gini(scaled)-g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGiniDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = Gini(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Gini mutated its input: %v", in)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal Jain = %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("unfair Jain = %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Errorf("empty Jain = %v, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("zero Jain = %v, want 1", got)
	}
}

func TestSliceHelpers(t *testing.T) {
	vals := []float64{2, 8, 4, 6}
	if MeanOf(vals) != 5 {
		t.Errorf("MeanOf = %v", MeanOf(vals))
	}
	if MinOf(vals) != 2 || MaxOf(vals) != 8 {
		t.Errorf("MinOf/MaxOf = %v/%v", MinOf(vals), MaxOf(vals))
	}
	if MeanOf(nil) != 0 || MinOf(nil) != 0 || MaxOf(nil) != 0 || StdDevOf(nil) != 0 {
		t.Error("empty-slice helpers should return 0")
	}
	if got, want := StdDevOf(vals), math.Sqrt(5.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDevOf = %v, want %v", got, want)
	}
}
