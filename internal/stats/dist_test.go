package stats

import (
	"math"
	"testing"
)

func sampleMean(d Dist, r *RNG, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestConstant(t *testing.T) {
	d := Constant{V: 3.5}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 3.5 {
			t.Fatal("constant distribution returned non-constant value")
		}
	}
	if d.Mean() != 3.5 {
		t.Errorf("Mean = %v", d.Mean())
	}
	if d.String() == "" {
		t.Error("empty String()")
	}
}

func TestUniformMoments(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 6}
	r := NewRNG(2)
	m := sampleMean(d, r, 100000)
	if math.Abs(m-4) > 0.05 {
		t.Errorf("uniform[2,6) mean = %v, want ~4", m)
	}
	if d.Mean() != 4 {
		t.Errorf("Mean() = %v, want 4", d.Mean())
	}
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 2 || v >= 6 {
			t.Fatalf("uniform sample out of range: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Rate: 0.5}
	r := NewRNG(3)
	m := sampleMean(d, r, 200000)
	if math.Abs(m-2) > 0.05 {
		t.Errorf("exp(0.5) mean = %v, want ~2", m)
	}
	if d.Mean() != 2 {
		t.Errorf("Mean() = %v", d.Mean())
	}
}

func TestNormalTruncation(t *testing.T) {
	d := Normal{Mu: 1, Sigma: 5, Min: 0.1}
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 0.1 {
			t.Fatalf("truncated normal returned %v < Min", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	d := Normal{Mu: 10, Sigma: 2, Min: -100}
	r := NewRNG(5)
	m := sampleMean(d, r, 100000)
	if math.Abs(m-10) > 0.1 {
		t.Errorf("normal mean = %v, want ~10", m)
	}
}

func TestParetoMeanAndBound(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 2}
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 1 {
			t.Fatalf("pareto sample %v below scale", v)
		}
	}
	if got, want := d.Mean(), 2.0; got != want {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 1}.Mean(), 1) {
		t.Error("pareto alpha=1 mean should be +Inf")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	r := NewRNG(7)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.SampleInt(r)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.08 {
			t.Errorf("zipf(s=0) bucket %d = %d, want ~%d", i, c, n/10)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.2)
	r := NewRNG(8)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.SampleInt(r)]++
	}
	// Rank 0 must dominate rank 50 decisively under s=1.2.
	if counts[0] < counts[50]*5 {
		t.Errorf("zipf skew too weak: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// All samples in range.
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Errorf("zipf produced out-of-range samples: %d accounted of %d", total, n)
	}
}

func TestZipfMeanMatchesEmpirical(t *testing.T) {
	z := NewZipf(20, 0.8)
	r := NewRNG(9)
	m := sampleMean(z, r, 200000)
	if math.Abs(m-z.Mean()) > 0.1 {
		t.Errorf("zipf empirical mean %v vs analytic %v", m, z.Mean())
	}
}

func TestDistStrings(t *testing.T) {
	dists := []Dist{
		Uniform{0, 1}, Exponential{1}, Normal{0, 1, 0}, Pareto{1, 2}, NewZipf(3, 1),
	}
	for _, d := range dists {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}
