package stats

import (
	"fmt"
	"math"
)

// Dist is a sampleable distribution over float64.
type Dist interface {
	// Sample draws one value using the supplied generator.
	Sample(r *RNG) float64
	// Mean returns the distribution's expected value.
	Mean() float64
	// String describes the distribution for experiment logs.
	String() string
}

// Constant is a degenerate distribution that always returns V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.V }

func (c Constant) String() string { return fmt.Sprintf("const(%g)", c.V) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *RNG) float64 { return r.Range(u.Lo, u.Hi) }

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform[%g,%g)", u.Lo, u.Hi) }

// Exponential is the exponential distribution with the given Rate (λ);
// its mean is 1/λ. It models Poisson inter-arrival times and memoryless
// service demands.
type Exponential struct{ Rate float64 }

// Sample implements Dist.
func (e Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / e.Rate }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

func (e Exponential) String() string { return fmt.Sprintf("exp(rate=%g)", e.Rate) }

// Normal is the normal distribution with mean Mu and standard deviation
// Sigma, truncated below at Min (work demands must stay positive).
type Normal struct {
	Mu, Sigma float64
	Min       float64
}

// Sample implements Dist.
func (n Normal) Sample(r *RNG) float64 {
	v := n.Mu + n.Sigma*r.NormFloat64()
	if v < n.Min {
		return n.Min
	}
	return v
}

// Mean implements Dist. The truncation bias is ignored; callers use Min as a
// safety floor far below Mu.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("normal(mu=%g,sigma=%g)", n.Mu, n.Sigma) }

// Pareto is the Pareto distribution with scale Xm > 0 and shape Alpha > 0;
// heavy-tailed service demands use Alpha in (1, 2].
type Pareto struct{ Xm, Alpha float64 }

// Sample implements Dist.
func (p Pareto) Sample(r *RNG) float64 {
	u := 1 - r.Float64() // in (0, 1]
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean implements Dist; infinite for Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,alpha=%g)", p.Xm, p.Alpha) }

// Zipf draws integers in [0, N) with probability proportional to
// 1/(rank+1)^S. It models skewed popularity (e.g. which consumer issues the
// next query). S = 0 is uniform.
type Zipf struct {
	N int
	S float64

	cdf []float64 // lazily built cumulative weights
}

// NewZipf builds a Zipf sampler over [0, n) with skew s >= 0.
func NewZipf(n int, s float64) *Zipf {
	z := &Zipf{N: n, S: s}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// SampleInt draws one rank in [0, N).
func (z *Zipf) SampleInt(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Sample implements Dist by returning the sampled rank as a float64.
func (z *Zipf) Sample(r *RNG) float64 { return float64(z.SampleInt(r)) }

// Mean implements Dist.
func (z *Zipf) Mean() float64 {
	m := 0.0
	prev := 0.0
	for i, c := range z.cdf {
		m += float64(i) * (c - prev)
		prev = c
	}
	return m
}

func (z *Zipf) String() string { return fmt.Sprintf("zipf(n=%d,s=%g)", z.N, z.S) }
