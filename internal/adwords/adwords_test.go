package adwords

import (
	"testing"

	"sbqa/internal/core"
	"sbqa/internal/knbest"
	"sbqa/internal/model"
	"sbqa/internal/topics"
)

// buildWorld returns a 4-topic world with three advertisers: a pharma
// company (health), a sports shop, and an electronics store.
func buildWorld(t *testing.T) (*World, *Advertiser) {
	t.Helper()
	w, err := NewWorld(core.MustNew(core.Config{KnBest: knbest.Params{K: 0, Kn: 0}}), Config{
		TopicDim:  4, // [health, sports, insects, electronics]
		QueryRate: 4,
		Duration:  600,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	pharma := w.AddAdvertiser("pharma", topics.Vector{1, 0, 0.15, 0}, 1)
	// The sports shop also sells repellent (outdoor athletes), so insect
	// queries have a natural home once pharma's campaign ends.
	w.AddAdvertiser("sports", topics.Vector{0.2, 1, 0.4, 0}, 1)
	w.AddAdvertiser("electro", topics.Vector{0, 0, 0, 1}, 1)
	return w, pharma
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(core.MustNew(core.DefaultConfig()), Config{TopicDim: 0}); err == nil {
		t.Error("zero topics accepted")
	}
}

func TestPlacementsFollowRelevance(t *testing.T) {
	w, pharma := buildWorld(t)
	placements := w.Run(nil)
	if placements == 0 {
		t.Fatal("no placements")
	}
	// Health queries (topic 0) should mostly land on pharma, sports
	// (topic 1) on the sports shop, electronics (topic 3) on electro.
	sports := w.Advertisers()[1]
	electro := w.Advertisers()[2]
	if pharma.WinsForTopic(0) < sports.WinsForTopic(0) || pharma.WinsForTopic(0) < electro.WinsForTopic(0) {
		t.Errorf("pharma should dominate health queries: pharma=%d sports=%d electro=%d",
			pharma.WinsForTopic(0), sports.WinsForTopic(0), electro.WinsForTopic(0))
	}
	if sports.WinsForTopic(1) < pharma.WinsForTopic(1) {
		t.Errorf("sports shop should dominate sports queries")
	}
	if electro.WinsForTopic(3) < pharma.WinsForTopic(3) {
		t.Errorf("electronics store should dominate electronics queries")
	}
}

func TestCampaignShiftsAllocations(t *testing.T) {
	w, pharma := buildWorld(t)
	// The paper's story: during the promotion the pharma company is "more
	// interested in treating the queries related to mosquitoes or insect
	// bites"; once over, "its intentions may change".
	const campaignEnd = 300.0
	pharma.Interests().AddCampaign(topics.Campaign{
		Boost: topics.Vector{0, 0, 5, 0},
		Until: campaignEnd,
	})
	var during, after int
	var insectDuring, insectAfter int
	w.Run(func(q model.Query, winner *Advertiser) {
		isInsect := w.dominantTopic(q) == 2
		if q.IssuedAt < campaignEnd {
			if isInsect {
				insectDuring++
				if winner == pharma {
					during++
				}
			}
		} else if isInsect {
			insectAfter++
			if winner == pharma {
				after++
			}
		}
	})
	if insectDuring == 0 || insectAfter == 0 {
		t.Fatal("no insect queries sampled")
	}
	shareDuring := float64(during) / float64(insectDuring)
	shareAfter := float64(after) / float64(insectAfter)
	if shareDuring < 0.5 {
		t.Errorf("during the campaign pharma won only %.0f%% of insect queries", shareDuring*100)
	}
	if shareAfter >= shareDuring/2 {
		t.Errorf("after the campaign pharma's insect share should collapse: %.0f%% -> %.0f%%",
			shareDuring*100, shareAfter*100)
	}
}

func TestQueryMixReweighting(t *testing.T) {
	w, _ := buildWorld(t)
	w.SetQueryMix([]float64{0, 0, 1, 0}) // only insect queries
	counts := map[int]int{}
	w.Run(func(q model.Query, _ *Advertiser) {
		counts[w.dominantTopic(q)]++
	})
	if counts[2] == 0 {
		t.Fatal("no insect queries under a pure-insect mix")
	}
	for topic, c := range counts {
		if topic != 2 && c > 0 {
			t.Errorf("topic %d sampled %d times under pure-insect mix", topic, c)
		}
	}
}

func TestPacingSmoothsDelivery(t *testing.T) {
	// Two identical advertisers: pacing (utilization) should split a
	// single-topic stream roughly evenly rather than starving one.
	w, err := NewWorld(core.MustNew(core.Config{KnBest: knbest.Params{K: 0, Kn: 1}}), Config{
		TopicDim:  1,
		QueryRate: 4,
		Duration:  500,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Target rates exceed each advertiser's fair share of the stream, so
	// pacing utilization stays below the cap and remains informative.
	a := w.AddAdvertiser("a", topics.Vector{1}, 4)
	b := w.AddAdvertiser("b", topics.Vector{1}, 4)
	total := w.Run(nil)
	if total == 0 {
		t.Fatal("no placements")
	}
	ratio := float64(a.Wins()) / float64(a.Wins()+b.Wins())
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("pacing failed to balance identical advertisers: %d vs %d", a.Wins(), b.Wins())
	}
}
