// Package adwords instantiates SbQA on the paper's other motivating domain
// (§I): keyword advertising. User queries carry topic vectors; advertisers
// (the providers) hold dynamic topic interests — including temporary
// campaigns, like the pharmaceutical company promoting an insect repellent —
// and the search mediator (the consumer side, acting for its users) prefers
// relevant advertisers. SbQA balances user relevance against advertisers'
// current goals, and, unlike keyword matching alone, follows advertisers'
// intentions when their campaigns start and stop.
package adwords

import (
	"context"
	"fmt"
	"math"

	"sbqa/internal/alloc"
	"sbqa/internal/mediator"
	"sbqa/internal/model"
	"sbqa/internal/sim"
	"sbqa/internal/stats"
	"sbqa/internal/topics"
	"sbqa/internal/workload"
)

// Advertiser is a provider bidding for ad placements. Its intention toward
// a query is its current (campaign-aware) topical interest; its utilization
// is its delivery pacing — how far ahead of its target impression rate it
// is running.
type Advertiser struct {
	world *World

	id        model.ProviderID
	name      string
	interests *topics.Interests

	// targetRate is the impressions/second the advertiser wants to win;
	// pacing above it makes the advertiser look "utilized" to KnBest.
	targetRate float64

	// winRate is an exponentially decaying estimate of the recent win
	// rate (impressions/second), evaluated lazily at read time so pacing
	// relaxes even while the advertiser is not winning.
	winRate  float64
	rateAt   float64
	wins     int
	winsTopc map[int]int // wins per dominant query topic
}

// pacingTau is the time constant (seconds) of the win-rate estimate.
const pacingTau = 20.0

// rate returns the decayed win-rate estimate at time now.
func (a *Advertiser) rate(now float64) float64 {
	if dt := now - a.rateAt; dt > 0 {
		a.winRate *= math.Exp(-dt / pacingTau)
		a.rateAt = now
	}
	return a.winRate
}

// ProviderID implements mediator.Provider.
func (a *Advertiser) ProviderID() model.ProviderID { return a.id }

// Name returns the advertiser's label.
func (a *Advertiser) Name() string { return a.name }

// Wins returns the advertiser's total impressions won.
func (a *Advertiser) Wins() int { return a.wins }

// WinsForTopic returns impressions won on queries whose dominant topic is t.
func (a *Advertiser) WinsForTopic(t int) int { return a.winsTopc[t] }

// Interests exposes the advertiser's dynamic profile (to schedule
// campaigns).
func (a *Advertiser) Interests() *topics.Interests { return a.interests }

// Snapshot implements mediator.Provider: utilization is delivery pacing.
func (a *Advertiser) Snapshot(now float64) model.ProviderSnapshot {
	util := 0.0
	if a.targetRate > 0 {
		util = a.rate(now) / a.targetRate
		if util > 1 {
			util = 1
		}
	}
	return model.ProviderSnapshot{
		ID:          a.id,
		Utilization: util,
		Capacity:    a.targetRate,
	}
}

// CanPerform implements mediator.Provider: every advertiser may bid on any
// query; relevance is the score's business.
func (a *Advertiser) CanPerform(model.Query) bool { return true }

// Intention implements mediator.Provider: the advertiser's current topical
// interest in the query.
func (a *Advertiser) Intention(q model.Query) model.Intention {
	topic := a.world.topicOf(q)
	return a.interests.PreferenceAt(a.world.engine.Now(), topic)
}

// Bid implements mediator.Provider (economic baseline): advertisers pay per
// impression; an interest-blind auction charges everyone alike, so the bid
// is just inverse pacing (under-delivering advertisers bid lower prices to
// win more).
func (a *Advertiser) Bid(model.Query) float64 {
	return 1 + a.rate(a.world.engine.Now())
}

// recordWin updates pacing and win counters.
func (a *Advertiser) recordWin(q model.Query) {
	now := a.world.engine.Now()
	a.rate(now) // decay to now
	a.winRate += 1 / pacingTau
	a.wins++
	a.winsTopc[a.world.dominantTopic(q)]++
}

// searchSide is the consumer: it acts for the users, preferring advertisers
// whose *base* profile is relevant to the query (users care about relevance,
// not about the advertiser's promotion calendar).
type searchSide struct {
	world *World
	id    model.ConsumerID
}

func (s *searchSide) ConsumerID() model.ConsumerID { return s.id }

func (s *searchSide) Intention(q model.Query, snap model.ProviderSnapshot) model.Intention {
	adv := s.world.advertiserByID(snap.ID)
	if adv == nil {
		return 0
	}
	// Relevance against the advertiser's base (stable) profile.
	return topics.Preference(adv.interests.Base, s.world.topicOf(q))
}

// Config sizes an ad world.
type Config struct {
	// TopicDim is the dimensionality of the topic space.
	TopicDim int
	// QueryRate is user queries per second.
	QueryRate float64
	// Duration is the simulated horizon.
	Duration float64
	// Window is the satisfaction memory length.
	Window int
	// Seed drives the query stream.
	Seed uint64
}

// World is a runnable ad-mediation simulation.
type World struct {
	cfg Config

	engine *sim.Engine
	med    *mediator.Mediator
	rng    *stats.RNG

	advertisers []*Advertiser
	topicsOf    map[model.QueryID]topics.Vector
	nextQID     model.QueryID

	// queryMix holds one weight per topic; each query picks a dominant
	// topic by these weights and adds small off-topic noise.
	queryMix []float64
}

// NewWorld builds an ad world running the given allocation technique.
func NewWorld(allocator alloc.Allocator, cfg Config) (*World, error) {
	if cfg.TopicDim < 1 {
		return nil, fmt.Errorf("adwords: need at least 1 topic, got %d", cfg.TopicDim)
	}
	if cfg.QueryRate <= 0 {
		cfg.QueryRate = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 1000
	}
	if cfg.Window < 1 {
		cfg.Window = 50
	}
	w := &World{
		cfg:      cfg,
		engine:   sim.NewEngine(),
		rng:      stats.NewRNG(cfg.Seed ^ 0xad5),
		topicsOf: make(map[model.QueryID]topics.Vector),
		queryMix: make([]float64, cfg.TopicDim),
	}
	for i := range w.queryMix {
		w.queryMix[i] = 1 // uniform topic mix by default
	}
	w.med = mediator.New(allocator, mediator.Config{Window: cfg.Window})
	w.med.RegisterConsumer(&searchSide{world: w, id: 0})
	return w, nil
}

// SetQueryMix reweights the topic mixture of the query stream.
func (w *World) SetQueryMix(mix []float64) {
	copy(w.queryMix, mix)
}

// AddAdvertiser registers an advertiser with a base interest profile and a
// target impression rate.
func (w *World) AddAdvertiser(name string, base topics.Vector, targetRate float64) *Advertiser {
	a := &Advertiser{
		world:      w,
		id:         model.ProviderID(len(w.advertisers)),
		name:       name,
		interests:  topics.NewInterests(base),
		targetRate: targetRate,
		winsTopc:   make(map[int]int),
	}
	w.advertisers = append(w.advertisers, a)
	w.med.RegisterProvider(a)
	return a
}

// Advertisers returns the registered advertisers.
func (w *World) Advertisers() []*Advertiser { return w.advertisers }

// Engine exposes the simulation engine (to schedule campaign switches).
func (w *World) Engine() *sim.Engine { return w.engine }

// Mediator exposes the pipeline (satisfaction readings).
func (w *World) Mediator() *mediator.Mediator { return w.med }

func (w *World) advertiserByID(id model.ProviderID) *Advertiser {
	if int(id) < 0 || int(id) >= len(w.advertisers) {
		return nil
	}
	return w.advertisers[id]
}

// topicOf returns the query's topic vector.
func (w *World) topicOf(q model.Query) topics.Vector {
	return w.topicsOf[q.ID]
}

// DominantTopic returns the index of the query's largest topic weight
// (valid while the query is being mediated or inside an OnWin callback).
func (w *World) DominantTopic(q model.Query) int { return w.dominantTopic(q) }

// dominantTopic returns the index of the query's largest topic weight.
func (w *World) dominantTopic(q model.Query) int {
	v := w.topicsOf[q.ID]
	best, idx := -1.0, 0
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return idx
}

// sampleTopic draws a query topic vector: one dominant topic by the mix
// weights plus small noise on the others.
func (w *World) sampleTopic() topics.Vector {
	var sum float64
	for _, m := range w.queryMix {
		sum += m
	}
	u := w.rng.Float64() * sum
	dom := 0
	for i, m := range w.queryMix {
		if u < m {
			dom = i
			break
		}
		u -= m
	}
	v := make(topics.Vector, w.cfg.TopicDim)
	for i := range v {
		v[i] = 0.1 * w.rng.Float64()
	}
	v[dom] = 1
	return v
}

// OnWin is invoked for every placement (query, winner); set before Run.
type OnWin func(q model.Query, winner *Advertiser)

// Run streams queries for the configured duration, mediating each one to a
// single advertiser (ad slots are exclusive), and returns the number of
// placements.
func (w *World) Run(onWin OnWin) int {
	placements := 0
	var arrive func()
	arrive = func() {
		gap := workload.Poisson{Rate: w.cfg.QueryRate}.Next(w.engine.Now(), w.rng)
		w.engine.Schedule(gap, func() {
			w.nextQID++
			q := model.Query{
				ID:       w.nextQID,
				Consumer: 0,
				N:        1,
				Work:     1,
				IssuedAt: w.engine.Now(),
			}
			w.topicsOf[q.ID] = w.sampleTopic()
			if a, err := w.med.Mediate(context.Background(), w.engine.Now(), q); err == nil && len(a.Selected) > 0 {
				winner := w.advertiserByID(a.Selected[0])
				if winner != nil {
					winner.recordWin(q)
					placements++
					if onWin != nil {
						onWin(q, winner)
					}
				}
			}
			delete(w.topicsOf, q.ID)
			arrive()
		})
	}
	arrive()
	w.engine.Run(w.cfg.Duration)
	return placements
}
