package score

import (
	"math"
	"testing"
	"testing/quick"

	"sbqa/internal/model"
)

func TestOmegaEquation2(t *testing.T) {
	tests := []struct {
		name       string
		satC, satP float64
		want       float64
	}{
		{"balanced", 0.5, 0.5, 0.5},
		{"consumer-happier", 1, 0, 1}, // all weight to provider intentions
		{"provider-happier", 0, 1, 0}, // all weight to consumer intentions
		{"slight-consumer", 0.6, 0.4, 0.6},
		{"clamped-inputs", 2, -1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Omega(tt.satC, tt.satP); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Omega(%v,%v) = %v, want %v", tt.satC, tt.satP, got, tt.want)
			}
		})
	}
}

func TestOmegaBoundsProperty(t *testing.T) {
	f := func(a, b float64) bool {
		w := Omega(a, b)
		return w >= 0 && w <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreDefinition3PositiveBranch(t *testing.T) {
	s := NewScorer()
	// ω=0.5: score = sqrt(pi*ci).
	if got, want := s.Score(1, 1, 0.5), 1.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(1,1,.5) = %v", got)
	}
	if got, want := s.Score(0.25, 1, 0.5), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(.25,1,.5) = %v, want %v", got, want)
	}
	// ω=1 ignores the consumer entirely.
	if got, want := s.Score(0.3, 0.9, 1), 0.3; math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(.3,.9,1) = %v, want %v", got, want)
	}
	// ω=0 ignores the provider entirely.
	if got, want := s.Score(0.3, 0.9, 0), 0.9; math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(.3,.9,0) = %v, want %v", got, want)
	}
}

func TestScoreDefinition3NegativeBranch(t *testing.T) {
	s := NewScorer() // ε = 1
	// pi = -1, ci = -1, ω = .5: -( (1+1+1)^.5 * (3)^.5 ) = -3.
	if got, want := s.Score(-1, -1, 0.5), -3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Score(-1,-1,.5) = %v, want %v", got, want)
	}
	// A zero intention routes to the negative branch (pi > 0 required).
	if got := s.Score(0, 1, 0.5); got >= 0 {
		t.Errorf("Score(0,1,.5) = %v, want negative", got)
	}
	// ε keeps the score strictly negative even at intention 1 on one side.
	if got := s.Score(1, 0, 0.5); got >= 0 {
		t.Errorf("Score(1,0,.5) = %v, want negative", got)
	}
	// Mildly negative beats strongly negative (closer to 0).
	mild := s.Score(0, 0.5, 0.5)
	harsh := s.Score(-1, -1, 0.5)
	if mild <= harsh {
		t.Errorf("mild objection %v should outrank harsh objection %v", mild, harsh)
	}
}

func TestScoreSignProperty(t *testing.T) {
	s := NewScorer()
	f := func(p, c, w float64) bool {
		pi := model.Intention(math.Mod(p, 1))
		ci := model.Intention(math.Mod(c, 1))
		omega := math.Mod(math.Abs(w), 1)
		got := s.Score(pi, ci, omega)
		if pi > 0 && ci > 0 {
			return got > 0
		}
		return got < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreMonotonicityInIntentions(t *testing.T) {
	s := NewScorer()
	// Positive branch: raising either intention raises the score.
	f := func(p, c, d float64) bool {
		pi := math.Mod(math.Abs(p), 1)
		ci := math.Mod(math.Abs(c), 1)
		delta := math.Mod(math.Abs(d), 1-pi)
		if pi <= 0 || ci <= 0 || delta <= 0 {
			return true
		}
		lo := s.Score(model.Intention(pi), model.Intention(ci), 0.5)
		hi := s.Score(model.Intention(pi+delta), model.Intention(ci), 0.5)
		return hi >= lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Negative branch: a worse intention gives a more negative score.
	if !(s.Score(-0.2, 0.5, 0.5) > s.Score(-0.9, 0.5, 0.5)) {
		t.Error("negative branch not ordered by objection strength")
	}
}

func TestScorerEpsilonRepair(t *testing.T) {
	s := &Scorer{Epsilon: 0, FixedOmega: -1}
	// ε ≤ 0 must be repaired, not produce a zero score.
	if got := s.Score(1, -1, 0.5); got == 0 || math.IsNaN(got) {
		t.Errorf("Score with ε=0 mis-repaired: %v", got)
	}
}

func TestFixedScorer(t *testing.T) {
	s := NewFixedScorer(0.25)
	if s.Adaptive() {
		t.Error("fixed scorer reported adaptive")
	}
	if got := s.Omega(0.9, 0.1); got != 0.25 {
		t.Errorf("fixed Omega = %v", got)
	}
	// Constructor clamps.
	if NewFixedScorer(-3).FixedOmega != 0 || NewFixedScorer(9).FixedOmega != 1 {
		t.Error("NewFixedScorer clamping failed")
	}
	if NewScorer().String() == "" || s.String() == "" {
		t.Error("String() empty")
	}
}

func TestAdaptiveOmegaCompensatesDissatisfied(t *testing.T) {
	s := NewScorer()
	// A dissatisfied provider (δs=0.1) vs a satisfied consumer (δs=0.9):
	// ω = 0.9, so the provider's intention dominates the score.
	providerLikes := s.Score(0.9, 0.2, s.Omega(0.9, 0.1))
	consumerLikes := s.Score(0.2, 0.9, s.Omega(0.9, 0.1))
	if providerLikes <= consumerLikes {
		t.Errorf("with dissatisfied provider, provider-preferred candidate should win: %v vs %v",
			providerLikes, consumerLikes)
	}
}

func TestRankOrdering(t *testing.T) {
	s := NewFixedScorer(0.5)
	cands := []Candidate{
		{Provider: 1, PI: 0.1, CI: 0.1},
		{Provider: 2, PI: 0.9, CI: 0.9},
		{Provider: 3, PI: -1, CI: 1},
		{Provider: 4, PI: 0.5, CI: 0.5},
	}
	ranked := s.Rank(cands)
	wantOrder := []model.ProviderID{2, 4, 1, 3}
	for i, w := range wantOrder {
		if ranked[i].Provider != w {
			t.Fatalf("rank[%d] = provider %d, want %d (full: %+v)", i, ranked[i].Provider, w, ranked)
		}
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("ranking not descending at %d", i)
		}
	}
}

func TestRankTieBreaksByID(t *testing.T) {
	s := NewFixedScorer(0.5)
	cands := []Candidate{
		{Provider: 9, PI: 0.5, CI: 0.5},
		{Provider: 2, PI: 0.5, CI: 0.5},
	}
	ranked := s.Rank(cands)
	if ranked[0].Provider != 2 || ranked[1].Provider != 9 {
		t.Errorf("tie should break by ID: %+v", ranked)
	}
}

func TestRankUsesPerPairOmega(t *testing.T) {
	s := NewScorer()
	// Both providers equally liked by the consumer; provider 1 is starved
	// (δs = 0) and wants the query, provider 2 is satisfied (δs = 1).
	cands := []Candidate{
		{Provider: 1, PI: 0.8, CI: 0.5, SatC: 0.5, SatP: 0.0},
		{Provider: 2, PI: 0.8, CI: 0.5, SatC: 0.5, SatP: 1.0},
	}
	ranked := s.Rank(cands)
	if ranked[0].Provider != 1 {
		t.Errorf("starved provider should rank first, got %+v", ranked)
	}
	if !(ranked[0].Omega > ranked[1].Omega) {
		t.Errorf("starved provider should get larger ω: %v vs %v", ranked[0].Omega, ranked[1].Omega)
	}
}

func TestRankEmpty(t *testing.T) {
	if got := NewScorer().Rank(nil); len(got) != 0 {
		t.Errorf("Rank(nil) = %v", got)
	}
}
