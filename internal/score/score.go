// Package score implements the SQLB provider-scoring rule of the SbQA paper:
// Definition 3 (the score scr_q(p) balancing the consumer's and the
// provider's intentions) and Equation 2 (the satisfaction-adaptive balance
// ω), plus the ranking vector →R the mediator derives from the scores.
package score

import (
	"fmt"
	"math"
	"sort"

	"sbqa/internal/model"
)

// DefaultEpsilon is the paper's usual setting for the ε parameter of
// Definition 3. ε > 0 prevents the negative branch of the score from
// collapsing to 0 when one intention equals 1.
const DefaultEpsilon = 1.0

// Scorer computes provider scores under a fixed or adaptive balance.
type Scorer struct {
	// Epsilon is the ε of Definition 3; must be > 0. NewScorer defaults it
	// to DefaultEpsilon.
	Epsilon float64

	// FixedOmega, when in [0, 1], overrides the adaptive balance of
	// Equation 2 with a constant: ω = 0 scores providers purely by the
	// consumer's intentions (cooperative providers, quality-first
	// applications), ω = 1 purely by the providers' intentions. A negative
	// value (the default) selects the adaptive rule.
	FixedOmega float64
}

// NewScorer returns a scorer with the paper defaults: ε = 1 and the
// satisfaction-adaptive ω of Equation 2.
func NewScorer() *Scorer {
	return &Scorer{Epsilon: DefaultEpsilon, FixedOmega: -1}
}

// NewFixedScorer returns a scorer with a constant balance ω ∈ [0, 1].
func NewFixedScorer(omega float64) *Scorer {
	if omega < 0 {
		omega = 0
	}
	if omega > 1 {
		omega = 1
	}
	return &Scorer{Epsilon: DefaultEpsilon, FixedOmega: omega}
}

// Adaptive reports whether the scorer uses the satisfaction-adaptive ω.
func (s *Scorer) Adaptive() bool { return s.FixedOmega < 0 || s.FixedOmega > 1 }

// Omega returns the balance to use for a (consumer, provider) pair with
// long-run satisfactions satC = δs(c) and satP = δs(p). When the scorer is
// adaptive it implements Equation 2:
//
//	ω = ((δs(c) − δs(p)) + 1) / 2
//
// A consumer more satisfied than the provider pushes ω above ½, giving the
// provider's intention more weight — the mediator compensates whichever side
// has been treated worse.
func (s *Scorer) Omega(satC, satP float64) float64 {
	if !s.Adaptive() {
		return s.FixedOmega
	}
	return Omega(satC, satP)
}

// Omega is Equation 2 as a standalone function. Inputs are clamped to
// [0, 1], so the result is also in [0, 1].
func Omega(satC, satP float64) float64 {
	return ((clamp01(satC) - clamp01(satP)) + 1) / 2
}

// Score computes scr_q(p) — Definition 3 — for one provider given the
// provider's intention pi = PI_q[p], the consumer's intention ci = CI_q[p],
// and the balance omega ∈ [0, 1]:
//
//	scr = pi^ω · ci^(1−ω)                          if pi > 0 and ci > 0
//	scr = −((1−pi+ε)^ω · (1−ci+ε)^(1−ω))           otherwise
//
// The positive branch rewards mutual interest geometrically; the negative
// branch orders the remaining providers by how strongly the parties object,
// least-objectionable (closest to zero) first. Scores are comparable only
// within one mediation.
func (s *Scorer) Score(pi, ci model.Intention, omega float64) float64 {
	eps := s.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	omega = clamp01(omega)
	p := float64(pi.Clamp())
	c := float64(ci.Clamp())
	if p > 0 && c > 0 {
		return math.Pow(p, omega) * math.Pow(c, 1-omega)
	}
	return -(math.Pow(1-p+eps, omega) * math.Pow(1-c+eps, 1-omega))
}

// Candidate is one provider entering the ranking step, carrying both
// intentions and both sides' long-run satisfaction.
type Candidate struct {
	Provider model.ProviderID
	PI       model.Intention // provider's intention to perform q
	CI       model.Intention // consumer's intention to allocate q to it
	SatC     float64         // δs(c) — same for every candidate of a query
	SatP     float64         // δs(p)
}

// Ranked is a scored candidate, produced by Rank.
type Ranked struct {
	Candidate
	Omega float64
	Score float64
}

// Rank scores every candidate and returns them sorted best-first (the
// paper's ranking vector →R: →R[0] is the best-scored provider). Ties break
// by provider ID for determinism.
func (s *Scorer) Rank(cands []Candidate) []Ranked {
	out := make([]Ranked, len(cands))
	for i, c := range cands {
		w := s.Omega(c.SatC, c.SatP)
		out[i] = Ranked{Candidate: c, Omega: w, Score: s.Score(c.PI, c.CI, w)}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Provider < out[j].Provider
	})
	return out
}

// View is the flattened, zero-copy form of one mediation's scoring input:
// position-aligned parallel columns over the Kn set, borrowed straight from
// the environment's batch buffers (no per-provider Candidate structs). All
// slices must have equal length; SatC is the consumer's δs, shared by every
// position.
type View struct {
	IDs  []model.ProviderID
	PI   []model.Intention
	CI   []model.Intention
	SatC float64
	SatP []float64
}

// Len returns the number of candidates in the view.
func (v View) Len() int { return len(v.IDs) }

// ScoreInto computes ω and scr_q(p) for every position of the view into the
// caller-provided columns (len(omega) == len(scores) == v.Len()), without
// allocating. The math is identical to Rank's: Omega per pair, then
// Definition 3.
func (s *Scorer) ScoreInto(v View, omega, scores []float64) {
	for i := range v.IDs {
		w := s.Omega(v.SatC, v.SatP[i])
		omega[i] = w
		scores[i] = s.Score(v.PI[i], v.CI[i], w)
	}
}

// FlatRanker ranks flat score columns without allocating: Rank fills order
// with the permutation that sorts positions best-first under the same
// comparator as Scorer.Rank (score descending, provider ID ascending,
// stable), so the resulting order is byte-identical to ranking per-provider
// structs. Keep one FlatRanker per allocator and reuse it; it is not safe
// for concurrent use.
type FlatRanker struct {
	scores []float64
	ids    []model.ProviderID
	order  []int
}

// Rank fills order (len(order) == len(scores) == len(ids)) with the
// best-first position permutation.
func (r *FlatRanker) Rank(scores []float64, ids []model.ProviderID, order []int) {
	for i := range order {
		order[i] = i
	}
	r.scores, r.ids, r.order = scores, ids, order
	sort.Stable(r)
	r.scores, r.ids, r.order = nil, nil, nil
}

// Len implements sort.Interface.
func (r *FlatRanker) Len() int { return len(r.order) }

// Swap implements sort.Interface.
func (r *FlatRanker) Swap(i, j int) { r.order[i], r.order[j] = r.order[j], r.order[i] }

// Less implements sort.Interface: score descending, provider ID ascending.
func (r *FlatRanker) Less(i, j int) bool {
	a, b := r.order[i], r.order[j]
	if r.scores[a] != r.scores[b] {
		return r.scores[a] > r.scores[b]
	}
	return r.ids[a] < r.ids[b]
}

// String describes the scorer configuration for experiment logs.
func (s *Scorer) String() string {
	if s.Adaptive() {
		return fmt.Sprintf("sqlb(ω=adaptive, ε=%g)", s.Epsilon)
	}
	return fmt.Sprintf("sqlb(ω=%g, ε=%g)", s.FixedOmega, s.Epsilon)
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
