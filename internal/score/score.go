// Package score implements the SQLB provider-scoring rule of the SbQA paper:
// Definition 3 (the score scr_q(p) balancing the consumer's and the
// provider's intentions) and Equation 2 (the satisfaction-adaptive balance
// ω), plus the ranking vector →R the mediator derives from the scores.
package score

import (
	"fmt"
	"math"
	"sort"

	"sbqa/internal/model"
)

// DefaultEpsilon is the paper's usual setting for the ε parameter of
// Definition 3. ε > 0 prevents the negative branch of the score from
// collapsing to 0 when one intention equals 1.
const DefaultEpsilon = 1.0

// Scorer computes provider scores under a fixed or adaptive balance.
type Scorer struct {
	// Epsilon is the ε of Definition 3; must be > 0. NewScorer defaults it
	// to DefaultEpsilon.
	Epsilon float64

	// FixedOmega, when in [0, 1], overrides the adaptive balance of
	// Equation 2 with a constant: ω = 0 scores providers purely by the
	// consumer's intentions (cooperative providers, quality-first
	// applications), ω = 1 purely by the providers' intentions. A negative
	// value (the default) selects the adaptive rule.
	FixedOmega float64
}

// NewScorer returns a scorer with the paper defaults: ε = 1 and the
// satisfaction-adaptive ω of Equation 2.
func NewScorer() *Scorer {
	return &Scorer{Epsilon: DefaultEpsilon, FixedOmega: -1}
}

// NewFixedScorer returns a scorer with a constant balance ω ∈ [0, 1].
func NewFixedScorer(omega float64) *Scorer {
	if omega < 0 {
		omega = 0
	}
	if omega > 1 {
		omega = 1
	}
	return &Scorer{Epsilon: DefaultEpsilon, FixedOmega: omega}
}

// Adaptive reports whether the scorer uses the satisfaction-adaptive ω.
func (s *Scorer) Adaptive() bool { return s.FixedOmega < 0 || s.FixedOmega > 1 }

// Omega returns the balance to use for a (consumer, provider) pair with
// long-run satisfactions satC = δs(c) and satP = δs(p). When the scorer is
// adaptive it implements Equation 2:
//
//	ω = ((δs(c) − δs(p)) + 1) / 2
//
// A consumer more satisfied than the provider pushes ω above ½, giving the
// provider's intention more weight — the mediator compensates whichever side
// has been treated worse.
func (s *Scorer) Omega(satC, satP float64) float64 {
	if !s.Adaptive() {
		return s.FixedOmega
	}
	return Omega(satC, satP)
}

// Omega is Equation 2 as a standalone function. Inputs are clamped to
// [0, 1], so the result is also in [0, 1].
func Omega(satC, satP float64) float64 {
	return ((clamp01(satC) - clamp01(satP)) + 1) / 2
}

// Score computes scr_q(p) — Definition 3 — for one provider given the
// provider's intention pi = PI_q[p], the consumer's intention ci = CI_q[p],
// and the balance omega ∈ [0, 1]:
//
//	scr = pi^ω · ci^(1−ω)                          if pi > 0 and ci > 0
//	scr = −((1−pi+ε)^ω · (1−ci+ε)^(1−ω))           otherwise
//
// The positive branch rewards mutual interest geometrically; the negative
// branch orders the remaining providers by how strongly the parties object,
// least-objectionable (closest to zero) first. Scores are comparable only
// within one mediation.
func (s *Scorer) Score(pi, ci model.Intention, omega float64) float64 {
	eps := s.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	omega = clamp01(omega)
	p := float64(pi.Clamp())
	c := float64(ci.Clamp())
	if p > 0 && c > 0 {
		return math.Pow(p, omega) * math.Pow(c, 1-omega)
	}
	return -(math.Pow(1-p+eps, omega) * math.Pow(1-c+eps, 1-omega))
}

// Candidate is one provider entering the ranking step, carrying both
// intentions and both sides' long-run satisfaction.
type Candidate struct {
	Provider model.ProviderID
	PI       model.Intention // provider's intention to perform q
	CI       model.Intention // consumer's intention to allocate q to it
	SatC     float64         // δs(c) — same for every candidate of a query
	SatP     float64         // δs(p)
}

// Ranked is a scored candidate, produced by Rank.
type Ranked struct {
	Candidate
	Omega float64
	Score float64
}

// Rank scores every candidate and returns them sorted best-first (the
// paper's ranking vector →R: →R[0] is the best-scored provider). Ties break
// by provider ID for determinism.
func (s *Scorer) Rank(cands []Candidate) []Ranked {
	out := make([]Ranked, len(cands))
	for i, c := range cands {
		w := s.Omega(c.SatC, c.SatP)
		out[i] = Ranked{Candidate: c, Omega: w, Score: s.Score(c.PI, c.CI, w)}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Provider < out[j].Provider
	})
	return out
}

// String describes the scorer configuration for experiment logs.
func (s *Scorer) String() string {
	if s.Adaptive() {
		return fmt.Sprintf("sqlb(ω=adaptive, ε=%g)", s.Epsilon)
	}
	return fmt.Sprintf("sqlb(ω=%g, ε=%g)", s.FixedOmega, s.Epsilon)
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
