package metrics

import (
	"math"
	"strings"
	"testing"

	"sbqa/internal/model"
)

func TestCollectorCounters(t *testing.T) {
	c := NewCollector()
	c.Issued = 10
	c.Completed = 8
	c.Unallocated = 2
	if got := c.Throughput(4); got != 2 {
		t.Errorf("Throughput = %v", got)
	}
	if got := c.Throughput(0); got != 0 {
		t.Errorf("Throughput(0) = %v", got)
	}
}

func TestCollectorDepartures(t *testing.T) {
	c := NewCollector()
	c.RecordDeparture(Departure{Time: 5, Provider: 3, Consumer: model.NoConsumer, Satisfaction: 0.2})
	c.RecordDeparture(Departure{Time: 2, Consumer: 1, Provider: model.NoProvider, Satisfaction: 0.4})
	c.RecordDeparture(Departure{Time: 9, Provider: 7, Consumer: model.NoConsumer, Satisfaction: 0.1})
	if got := c.ProviderDepartures(); got != 2 {
		t.Errorf("ProviderDepartures = %d", got)
	}
	if got := c.ConsumerDepartures(); got != 1 {
		t.Errorf("ConsumerDepartures = %d", got)
	}
	SortDepartures(c.Departures)
	if c.Departures[0].Time != 2 || c.Departures[2].Time != 9 {
		t.Errorf("not sorted: %+v", c.Departures)
	}
}

func TestAddSampleAndSummarize(t *testing.T) {
	c := NewCollector()
	c.ResponseTime.Add(1)
	c.ResponseTime.Add(3)
	c.MediationContacts.Add(10)
	c.Completed = 2
	c.Issued = 2
	for i := 0; i < 4; i++ {
		c.AddSample(Sample{
			T:               float64(i * 10),
			ConsumerSats:    []float64{0.5, 0.7},
			ProviderSats:    []float64{0.4, 0.6, 0.8},
			Utilizations:    []float64{0.3, 0.5},
			PendingWork:     []float64{1, 1},
			OnlineProviders: 3,
			OnlineConsumers: 2,
		})
	}
	r := c.Summarize("SbQA", 40, 0.25)
	if r.Technique != "SbQA" {
		t.Errorf("Technique = %q", r.Technique)
	}
	if math.Abs(r.MeanResponseTime-2) > 1e-12 {
		t.Errorf("MeanResponseTime = %v", r.MeanResponseTime)
	}
	if math.Abs(r.ConsumerSat-0.6) > 1e-12 {
		t.Errorf("ConsumerSat = %v", r.ConsumerSat)
	}
	if math.Abs(r.ProviderSat-0.6) > 1e-12 {
		t.Errorf("ProviderSat = %v", r.ProviderSat)
	}
	if math.Abs(r.ConsumerSatMin-0.5) > 1e-12 || math.Abs(r.ProviderSatMin-0.4) > 1e-12 {
		t.Errorf("mins = %v/%v", r.ConsumerSatMin, r.ProviderSatMin)
	}
	if r.OnlineAtEnd != 3 {
		t.Errorf("OnlineAtEnd = %v", r.OnlineAtEnd)
	}
	if math.Abs(r.Throughput-0.05) > 1e-12 {
		t.Errorf("Throughput = %v", r.Throughput)
	}
	if r.MeanContacts != 10 {
		t.Errorf("MeanContacts = %v", r.MeanContacts)
	}
	// Degenerate tail repaired.
	r2 := c.Summarize("x", 40, 0)
	if r2.ConsumerSat == 0 {
		t.Error("tail repair failed")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	c := NewCollector()
	c.AddSample(Sample{T: 0, ConsumerSats: []float64{1}, ProviderSats: []float64{1}})
	c.AddSample(Sample{T: 1, ConsumerSats: []float64{0.5}, ProviderSats: []float64{0.5}})
	var sb strings.Builder
	if err := c.WriteSeriesCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "consumer_sat") || !strings.Contains(out, "online_providers") {
		t.Errorf("missing headers: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("want header + 2 rows, got %q", out)
	}
}

func TestResultTableRender(t *testing.T) {
	results := []Result{
		{Technique: "Capacity", MeanResponseTime: 1.5, ConsumerSat: 0.5},
		{Technique: "SbQA", MeanResponseTime: 1.8, ConsumerSat: 0.8},
	}
	table := ResultTable("Scenario 3", results)
	out := table.String()
	if !strings.Contains(out, "Scenario 3") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "Capacity") || !strings.Contains(out, "SbQA") {
		t.Errorf("missing rows: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("want 5 lines, got %d: %q", len(lines), out)
	}
	// Columns aligned: header and separator equal length.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestEmptyTableRender(t *testing.T) {
	table := &Table{Columns: []string{"a", "b"}}
	out := table.String()
	if !strings.Contains(out, "a") {
		t.Errorf("header missing: %q", out)
	}
}
