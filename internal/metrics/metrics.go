// Package metrics collects the measurements the SbQA experiments report:
// response times, throughput, participants' satisfaction over time, load
// balance, fairness, and departures — and renders them as the tables and
// CSV series EXPERIMENTS.md records.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"sbqa/internal/model"
	"sbqa/internal/stats"
)

// Departure records one participant leaving the system by dissatisfaction.
type Departure struct {
	Time         float64
	Consumer     model.ConsumerID // NoConsumer if a provider left
	Provider     model.ProviderID // NoProvider if a consumer left
	Satisfaction float64          // δs at the moment of departure
}

// Collector accumulates one run's measurements. It is not safe for
// concurrent use (the simulator is single-threaded).
type Collector struct {
	// ResponseTime records end-to-end query response times (first issue to
	// n-th result received).
	ResponseTime *stats.Summary

	// MediationContacts records, per query, how many providers the
	// mediator contacted (the proposed-set size) — the communication-cost
	// measure KnBest bounds.
	MediationContacts *stats.Summary

	// Completed counts fully served queries; Unallocated counts queries
	// the mediator could not place (no eligible online provider);
	// Issued counts all queries that reached the mediator.
	Completed   int64
	Unallocated int64
	Issued      int64

	// ValidationFailures counts queries whose replicas all responded
	// without reaching the validation quorum (malicious results).
	ValidationFailures int64

	// Departures lists participants that left, in time order.
	Departures []Departure

	// Time series sampled every SampleEvery simulated seconds.
	ConsumerSat     *stats.TimeSeries // mean δs over online consumers
	ProviderSat     *stats.TimeSeries // mean δs over online providers
	ConsumerSatMin  *stats.TimeSeries
	ProviderSatMin  *stats.TimeSeries
	ProviderSatGini *stats.TimeSeries
	Utilization     *stats.TimeSeries // mean provider utilization
	UtilizationStd  *stats.TimeSeries // stddev across providers (balance)
	OnlineProviders *stats.TimeSeries
	OnlineConsumers *stats.TimeSeries
	QueueGini       *stats.TimeSeries // inequality of pending work
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		ResponseTime:      stats.NewSummary(),
		MediationContacts: stats.NewSummary(),
		ConsumerSat:       stats.NewTimeSeries("consumer_sat"),
		ProviderSat:       stats.NewTimeSeries("provider_sat"),
		ConsumerSatMin:    stats.NewTimeSeries("consumer_sat_min"),
		ProviderSatMin:    stats.NewTimeSeries("provider_sat_min"),
		ProviderSatGini:   stats.NewTimeSeries("provider_sat_gini"),
		Utilization:       stats.NewTimeSeries("utilization"),
		UtilizationStd:    stats.NewTimeSeries("utilization_std"),
		OnlineProviders:   stats.NewTimeSeries("online_providers"),
		OnlineConsumers:   stats.NewTimeSeries("online_consumers"),
		QueueGini:         stats.NewTimeSeries("queue_gini"),
	}
}

// RecordDeparture appends a departure.
func (c *Collector) RecordDeparture(d Departure) {
	c.Departures = append(c.Departures, d)
}

// ProviderDepartures counts departed providers.
func (c *Collector) ProviderDepartures() int {
	n := 0
	for _, d := range c.Departures {
		if d.Provider != model.NoProvider {
			n++
		}
	}
	return n
}

// ConsumerDepartures counts departed consumers.
func (c *Collector) ConsumerDepartures() int {
	n := 0
	for _, d := range c.Departures {
		if d.Consumer != model.NoConsumer {
			n++
		}
	}
	return n
}

// Sample records one row of the per-interval gauges.
type Sample struct {
	T               float64
	ConsumerSats    []float64
	ProviderSats    []float64
	Utilizations    []float64
	PendingWork     []float64
	OnlineProviders int
	OnlineConsumers int
}

// AddSample folds one sampling instant into the time series.
func (c *Collector) AddSample(s Sample) {
	c.ConsumerSat.Add(s.T, stats.MeanOf(s.ConsumerSats))
	c.ProviderSat.Add(s.T, stats.MeanOf(s.ProviderSats))
	c.ConsumerSatMin.Add(s.T, stats.MinOf(s.ConsumerSats))
	c.ProviderSatMin.Add(s.T, stats.MinOf(s.ProviderSats))
	c.ProviderSatGini.Add(s.T, stats.Gini(s.ProviderSats))
	c.Utilization.Add(s.T, stats.MeanOf(s.Utilizations))
	c.UtilizationStd.Add(s.T, stats.StdDevOf(s.Utilizations))
	c.OnlineProviders.Add(s.T, float64(s.OnlineProviders))
	c.OnlineConsumers.Add(s.T, float64(s.OnlineConsumers))
	c.QueueGini.Add(s.T, stats.Gini(s.PendingWork))
}

// Throughput returns completed queries per simulated second over duration.
func (c *Collector) Throughput(duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	return float64(c.Completed) / duration
}

// Result condenses one run into the row the experiment tables print.
type Result struct {
	Technique string
	Duration  float64

	MeanResponseTime float64
	P95ResponseTime  float64
	P99ResponseTime  float64
	Throughput       float64
	Unallocated      int64
	Completed        int64
	Issued           int64

	// ValidationFailures counts queries that failed redundancy checking.
	ValidationFailures int64

	// Steady-state satisfaction (tail mean of the series).
	ConsumerSat     float64
	ProviderSat     float64
	ConsumerSatMin  float64
	ProviderSatMin  float64
	ProviderSatGini float64

	UtilizationMean float64
	UtilizationStd  float64

	ProvidersLeft int // departures
	ConsumersLeft int
	OnlineAtEnd   float64 // providers still online at the end

	MeanContacts float64 // mediation communication cost
}

// Summarize produces the Result for a run of the given technique name and
// duration, using the tail fraction of the series as the steady-state
// estimate (0 < tail ≤ 1; typical 0.25).
func (c *Collector) Summarize(technique string, duration, tail float64) Result {
	if tail <= 0 || tail > 1 {
		tail = 0.25
	}
	return Result{
		Technique:          technique,
		Duration:           duration,
		MeanResponseTime:   c.ResponseTime.Mean(),
		P95ResponseTime:    c.ResponseTime.Percentile(95),
		P99ResponseTime:    c.ResponseTime.Percentile(99),
		Throughput:         c.Throughput(duration),
		Unallocated:        c.Unallocated,
		Completed:          c.Completed,
		Issued:             c.Issued,
		ValidationFailures: c.ValidationFailures,
		ConsumerSat:        c.ConsumerSat.TailMean(tail),
		ProviderSat:        c.ProviderSat.TailMean(tail),
		ConsumerSatMin:     c.ConsumerSatMin.TailMean(tail),
		ProviderSatMin:     c.ProviderSatMin.TailMean(tail),
		ProviderSatGini:    c.ProviderSatGini.TailMean(tail),
		UtilizationMean:    c.Utilization.TailMean(tail),
		UtilizationStd:     c.UtilizationStd.TailMean(tail),
		ProvidersLeft:      c.ProviderDepartures(),
		ConsumersLeft:      c.ConsumerDepartures(),
		OnlineAtEnd:        c.OnlineProviders.Last().V,
		MeanContacts:       c.MediationContacts.Mean(),
	}
}

// WriteSeriesCSV writes all time series as one aligned CSV table.
func (c *Collector) WriteSeriesCSV(w io.Writer) error {
	return stats.WriteCSVMulti(w,
		c.ConsumerSat, c.ProviderSat, c.ConsumerSatMin, c.ProviderSatMin,
		c.ProviderSatGini, c.Utilization, c.UtilizationStd,
		c.OnlineProviders, c.OnlineConsumers, c.QueueGini)
}

// Table renders results as an aligned text table, one row per technique —
// the experiment harness's paper-style output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// ResultTable builds the standard comparison table from per-technique
// results.
func ResultTable(title string, results []Result) *Table {
	t := &Table{
		Title: title,
		Columns: []string{
			"technique", "RTmean", "RTp99", "thrpt", "sat(C)", "sat(P)",
			"giniP", "util", "utilSD", "left(P)", "left(C)", "contacts",
		},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Technique,
			fmt.Sprintf("%.2f", r.MeanResponseTime),
			fmt.Sprintf("%.2f", r.P99ResponseTime),
			fmt.Sprintf("%.2f", r.Throughput),
			fmt.Sprintf("%.3f", r.ConsumerSat),
			fmt.Sprintf("%.3f", r.ProviderSat),
			fmt.Sprintf("%.3f", r.ProviderSatGini),
			fmt.Sprintf("%.2f", r.UtilizationMean),
			fmt.Sprintf("%.3f", r.UtilizationStd),
			fmt.Sprintf("%d", r.ProvidersLeft),
			fmt.Sprintf("%d", r.ConsumersLeft),
			fmt.Sprintf("%.1f", r.MeanContacts),
		})
	}
	return t
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// SortDepartures orders departures by time (stable); useful before
// rendering.
func SortDepartures(ds []Departure) {
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].Time < ds[j].Time })
}
