package alloc

import (
	"testing"

	"sbqa/internal/model"
	"sbqa/internal/stats"
)

// TestAllocatorContractProperty drives every baseline through randomized
// candidate sets and queries and checks the Allocator contract:
// Selected ⊆ Proposed ⊆ candidates, no duplicates, correct selection count,
// nil only on empty/unservable input, and no mutation of the input slice.
func TestAllocatorContractProperty(t *testing.T) {
	rng := stats.NewRNG(777)
	allocators := []Allocator{
		NewRandom(stats.NewRNG(1)),
		NewRoundRobin(),
		NewCapacity(),
		NewEconomic(stats.NewRNG(2)),
		NewShareBased(),
	}
	env := NewStaticEnv()

	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(30) // may be zero
		cands := make([]model.ProviderSnapshot, n)
		backup := make([]model.ProviderSnapshot, n)
		for i := range cands {
			cands[i] = model.ProviderSnapshot{
				ID:          model.ProviderID(i * 2), // gaps: IDs ≠ indices
				Utilization: rng.Float64(),
				QueueLen:    rng.Intn(5),
				Capacity:    0.5 + rng.Float64(),
				PendingWork: rng.Float64() * 20,
			}
		}
		copy(backup, cands)
		q := model.Query{
			ID:       model.QueryID(trial),
			Consumer: model.ConsumerID(rng.Intn(3)),
			N:        1 + rng.Intn(4),
			Work:     1 + rng.Float64()*10,
		}

		for _, a := range allocators {
			out := allocate(t, a, env, q, cands)
			if n == 0 {
				if out != nil {
					t.Fatalf("%s: non-nil allocation for empty candidates", a.Name())
				}
				continue
			}
			if out == nil {
				// Only ShareBased may refuse a non-empty candidate set
				// (exhausted budgets); with StaticEnv's fallback pricing
				// budgets are positive, so nil is always a bug here.
				t.Fatalf("%s: nil allocation for %d candidates", a.Name(), n)
			}
			want := q.N
			if want > n {
				want = n
			}
			if len(out.Selected) != want {
				t.Fatalf("%s: selected %d of %d candidates for q.N=%d",
					a.Name(), len(out.Selected), n, q.N)
			}
			valid := map[model.ProviderID]bool{}
			for _, c := range cands {
				valid[c.ID] = true
			}
			seenProp := map[model.ProviderID]bool{}
			for _, p := range out.Proposed {
				if !valid[p] {
					t.Fatalf("%s: proposed foreign provider %d", a.Name(), p)
				}
				if seenProp[p] {
					t.Fatalf("%s: duplicate proposed provider %d", a.Name(), p)
				}
				seenProp[p] = true
			}
			seenSel := map[model.ProviderID]bool{}
			for _, p := range out.Selected {
				if !seenProp[p] {
					t.Fatalf("%s: selected %d not in proposed set", a.Name(), p)
				}
				if seenSel[p] {
					t.Fatalf("%s: duplicate selected provider %d", a.Name(), p)
				}
				seenSel[p] = true
			}
			for i := range cands {
				if cands[i] != backup[i] {
					t.Fatalf("%s: mutated candidate slice at %d", a.Name(), i)
				}
			}
		}
	}
}
