package alloc

// This file defines the allocator-state persistence contract. Allocators are
// deliberately small state machines — a sampling RNG here, a rotation cursor
// there — but that state is exactly what makes two runs with the same seed
// reproducible. A durable engine that snapshots satisfaction memory without
// the allocator state would resume with its sampling streams rewound to the
// seed, so warm restarts would diverge from the uninterrupted run. Stateful
// closes that gap: allocators that carry mutable decision state export it as
// a small opaque blob and restore it on boot.

import (
	"encoding/binary"
	"fmt"

	"sbqa/internal/stats"
)

// Stateful is the optional allocator extension for durable engines: an
// allocator that carries mutable decision state (sampling RNG positions,
// rotation cursors) exports it as an opaque blob and can later be restored
// from one, resuming its decision stream exactly where it stopped.
//
// Both methods follow the Allocate threading contract: they must run on the
// goroutine that owns the allocator (the engine calls them under the shard
// lock). Blobs are versioned by their producer; RestoreState must reject —
// with an error, never a panic — blobs it does not recognize, since a policy
// change between snapshot and restore can hand an allocator another kind's
// state.
type Stateful interface {
	// ExportState returns the allocator's mutable decision state.
	ExportState() []byte

	// RestoreState resumes from a blob previously returned by ExportState.
	RestoreState(state []byte) error
}

// rngStateLen is the encoded size of one stats.RNG state: a one-byte tag
// plus four little-endian uint64 words.
const rngStateLen = 1 + 4*8

// rngStateTag distinguishes RNG blobs from other allocator state encodings.
const rngStateTag = 0x52 // 'R'

// MarshalRNGState encodes an RNG state blob for ExportState implementations
// built around a single stats.RNG.
func MarshalRNGState(state [4]uint64) []byte {
	buf := make([]byte, rngStateLen)
	buf[0] = rngStateTag
	for i, w := range state {
		binary.LittleEndian.PutUint64(buf[1+8*i:], w)
	}
	return buf
}

// UnmarshalRNGState decodes a blob produced by MarshalRNGState.
func UnmarshalRNGState(blob []byte) ([4]uint64, error) {
	var state [4]uint64
	if len(blob) != rngStateLen || blob[0] != rngStateTag {
		return state, fmt.Errorf("alloc: not an RNG state blob (%d bytes)", len(blob))
	}
	for i := range state {
		state[i] = binary.LittleEndian.Uint64(blob[1+8*i:])
	}
	return state, nil
}

// restoreRNG applies a blob to one RNG, shared by the baseline Stateful
// implementations.
func restoreRNG(rng *stats.RNG, blob []byte) error {
	state, err := UnmarshalRNGState(blob)
	if err != nil {
		return err
	}
	rng.Restore(state)
	return nil
}

// ExportState implements Stateful: the sampling stream position.
func (r *Random) ExportState() []byte { return MarshalRNGState(r.rng.State()) }

// RestoreState implements Stateful.
func (r *Random) RestoreState(state []byte) error { return restoreRNG(r.rng, state) }

// ExportState implements Stateful: the bid-sampling stream position.
func (e *Economic) ExportState() []byte { return MarshalRNGState(e.rng.State()) }

// RestoreState implements Stateful.
func (e *Economic) RestoreState(state []byte) error { return restoreRNG(e.rng, state) }

// roundRobinStateTag distinguishes the rotation-cursor blob.
const roundRobinStateTag = 0x43 // 'C'

// ExportState implements Stateful: the rotation cursor.
func (r *RoundRobin) ExportState() []byte {
	buf := make([]byte, 1+8)
	buf[0] = roundRobinStateTag
	binary.LittleEndian.PutUint64(buf[1:], uint64(r.cursor))
	return buf
}

// RestoreState implements Stateful.
func (r *RoundRobin) RestoreState(state []byte) error {
	if len(state) != 1+8 || state[0] != roundRobinStateTag {
		return fmt.Errorf("alloc: not a round-robin state blob (%d bytes)", len(state))
	}
	cursor := binary.LittleEndian.Uint64(state[1:])
	if cursor > 1<<31 {
		return fmt.Errorf("alloc: round-robin cursor %d out of range", cursor)
	}
	r.cursor = int(cursor)
	return nil
}

var (
	_ Stateful = (*Random)(nil)
	_ Stateful = (*Economic)(nil)
	_ Stateful = (*RoundRobin)(nil)
)
