// Package alloc defines the query-allocator abstraction the mediator uses
// and the baseline allocation techniques the SbQA demo compares against:
//
//   - Capacity-based allocation [Ganesan et al., VLDB 2004] — the principle
//     behind BOINC's dispatcher: send each query to the providers with the
//     most available capacity, ignoring anyone's interests;
//   - Economic allocation [Mariposa, VLDBJ 1996] — providers bid a price,
//     the mediator buys the cheapest offers, interests enter only through
//     whatever the price encodes;
//   - Random and RoundRobin — controls.
//
// The SbQA allocator itself (KnBest × SQLB) lives in internal/core; it
// implements the same Allocator interface.
package alloc

import (
	"context"
	"fmt"
	"sort"

	"sbqa/internal/model"
	"sbqa/internal/stats"
)

// Allocator decides which providers perform a query.
//
// Contract: the returned Allocation must have Selected ⊆ Proposed ⊆
// candidates, with len(Selected) = min(q.N, feasible). Proposed is the set
// of providers the mediator contacts about q; it defines the providers whose
// satisfaction windows record this mediation (Definition 2 is over
// *proposed* queries). Allocators that collect intentions should record them
// in the Allocation; the mediator backfills any it needs for analysis.
type Allocator interface {
	// Name identifies the technique in experiment tables.
	Name() string

	// Allocate mediates one query over the candidate set P_q. candidates
	// is never mutated. A (nil, nil) result means the query cannot be
	// allocated (no candidates, or every candidate refused). A non-nil
	// error means the mediation itself failed — the context was canceled
	// or the environment's batched collection aborted — and the query was
	// not mediated; allocators never return an error for individual silent
	// participants (the Env imputes those).
	Allocate(ctx context.Context, env Env, q model.Query, candidates []model.ProviderSnapshot) (*model.Allocation, error)
}

// resultN returns how many providers to select for q from nCands candidates.
func resultN(q model.Query, nCands int) int {
	n := q.N
	if n < 1 {
		n = 1
	}
	if n > nCands {
		n = nCands
	}
	return n
}

// newAllocation builds an Allocation whose proposed set equals the selected
// set — the shape shared by all baselines that contact only the providers
// they pick.
func newAllocation(q model.Query, selected []model.ProviderSnapshot) *model.Allocation {
	ids := make([]model.ProviderID, len(selected))
	for i, s := range selected {
		ids[i] = s.ID
	}
	return &model.Allocation{
		Query:    q,
		Selected: ids,
		Proposed: append([]model.ProviderID(nil), ids...),
	}
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

// Random allocates each query to q.N uniformly random candidates. It is the
// weakest control: interest-blind and load-blind.
type Random struct {
	rng *stats.RNG
	buf []int
}

// NewRandom returns a random allocator with its own stream.
func NewRandom(rng *stats.RNG) *Random {
	if rng == nil {
		rng = stats.NewRNG(1)
	}
	return &Random{rng: rng}
}

// Name implements Allocator.
func (r *Random) Name() string { return "Random" }

// Allocate implements Allocator.
func (r *Random) Allocate(_ context.Context, _ Env, q model.Query, candidates []model.ProviderSnapshot) (*model.Allocation, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	n := resultN(q, len(candidates))
	r.buf = r.rng.SampleK(len(candidates), n, r.buf)
	sel := make([]model.ProviderSnapshot, 0, n)
	for _, idx := range r.buf {
		sel = append(sel, candidates[idx])
	}
	return newAllocation(q, sel), nil
}

// ---------------------------------------------------------------------------
// RoundRobin
// ---------------------------------------------------------------------------

// RoundRobin allocates queries to candidates in rotating ID order: perfectly
// even in count, blind to load, interests, and heterogeneity.
type RoundRobin struct {
	cursor int
}

// NewRoundRobin returns a round-robin allocator.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Allocator.
func (r *RoundRobin) Name() string { return "RoundRobin" }

// Allocate implements Allocator.
func (r *RoundRobin) Allocate(_ context.Context, _ Env, q model.Query, candidates []model.ProviderSnapshot) (*model.Allocation, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	// Stable order by ID so the rotation is well defined regardless of the
	// candidate slice order.
	ordered := append([]model.ProviderSnapshot(nil), candidates...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	n := resultN(q, len(ordered))
	sel := make([]model.ProviderSnapshot, 0, n)
	for i := 0; i < n; i++ {
		sel = append(sel, ordered[(r.cursor+i)%len(ordered)])
	}
	r.cursor = (r.cursor + n) % len(ordered)
	return newAllocation(q, sel), nil
}

// ---------------------------------------------------------------------------
// Capacity-based (the BOINC-like baseline)
// ---------------------------------------------------------------------------

// Capacity allocates each query to the q.N providers with the greatest
// available capacity — the lowest utilization, breaking ties by shorter
// queue, then less pending work, then ID. This is the query-load-balancing
// principle of [9] and, per the demo paper, "the way in which BOINC
// allocates queries". It maximizes throughput but is completely blind to
// participants' interests.
type Capacity struct{}

// NewCapacity returns a capacity-based allocator.
func NewCapacity() *Capacity { return &Capacity{} }

// Name implements Allocator.
func (*Capacity) Name() string { return "Capacity" }

// Allocate implements Allocator.
func (*Capacity) Allocate(_ context.Context, _ Env, q model.Query, candidates []model.ProviderSnapshot) (*model.Allocation, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	ordered := append([]model.ProviderSnapshot(nil), candidates...)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Utilization != b.Utilization {
			return a.Utilization < b.Utilization
		}
		if a.QueueLen != b.QueueLen {
			return a.QueueLen < b.QueueLen
		}
		if a.PendingWork != b.PendingWork {
			return a.PendingWork < b.PendingWork
		}
		return a.ID < b.ID
	})
	n := resultN(q, len(ordered))
	return newAllocation(q, ordered[:n]), nil
}

// ---------------------------------------------------------------------------
// Economic (Mariposa-like)
// ---------------------------------------------------------------------------

// DefaultBidSample is how many candidates the economic mediator solicits
// bids from for each query. Mariposa-style systems contact a bounded subset
// rather than the whole provider population.
const DefaultBidSample = 10

// Economic implements a sealed-bid microeconomic mediation: it asks a random
// sample of candidates for a price to perform q and buys the q.N cheapest
// offers. The contacted bidders form the proposed set — they saw the query,
// so their satisfaction windows record it.
type Economic struct {
	// BidSample bounds the number of bidders contacted per query;
	// values < 1 mean DefaultBidSample.
	BidSample int

	rng *stats.RNG
	buf []int
}

// NewEconomic returns an economic allocator with its own stream.
func NewEconomic(rng *stats.RNG) *Economic {
	if rng == nil {
		rng = stats.NewRNG(1)
	}
	return &Economic{BidSample: DefaultBidSample, rng: rng}
}

// Name implements Allocator.
func (*Economic) Name() string { return "Economic" }

// Interactive reports that the economic mediation contacts providers (the
// bidding round); the simulation charges it a network round trip per query.
func (*Economic) Interactive() bool { return true }

// Allocate implements Allocator. The bidding round is one batched Bids call
// over the sampled candidates — the environment owns the fan-out and imputes
// an expected-delay bid for any bidder that stays silent.
func (e *Economic) Allocate(ctx context.Context, env Env, q model.Query, candidates []model.ProviderSnapshot) (*model.Allocation, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	sample := e.BidSample
	if sample < 1 {
		sample = DefaultBidSample
	}
	n := resultN(q, len(candidates))
	if sample < n {
		sample = n
	}
	if sample > len(candidates) {
		sample = len(candidates)
	}
	e.buf = e.rng.SampleK(len(candidates), sample, e.buf)

	bidders := make([]model.ProviderSnapshot, 0, sample)
	for _, idx := range e.buf {
		bidders = append(bidders, candidates[idx])
	}
	bids, err := env.Bids(ctx, q, bidders)
	if err != nil {
		return nil, err
	}
	if err := CheckBatch(len(bids), len(bidders), "bid"); err != nil {
		return nil, err
	}

	type offer struct {
		snap model.ProviderSnapshot
		bid  float64
	}
	offers := make([]offer, 0, sample)
	for i, snap := range bidders {
		offers = append(offers, offer{snap: snap, bid: bids[i]})
	}
	sort.SliceStable(offers, func(i, j int) bool {
		if offers[i].bid != offers[j].bid {
			return offers[i].bid < offers[j].bid
		}
		return offers[i].snap.ID < offers[j].snap.ID
	})

	a := &model.Allocation{Query: q}
	a.Scores = make([]float64, 0, len(offers))
	for i, o := range offers {
		a.Proposed = append(a.Proposed, o.snap.ID)
		// Bids are prices: lower is better. Store the negated bid so that
		// Scores keeps the "higher is better" convention.
		a.Scores = append(a.Scores, -o.bid)
		if i < n {
			a.Selected = append(a.Selected, o.snap.ID)
		}
	}
	return a, nil
}

// ---------------------------------------------------------------------------
// Registry of named constructors (CLI / experiments convenience)
// ---------------------------------------------------------------------------

// NewByName builds one of the baseline allocators from its table name.
// SbQA itself is constructed in internal/core (it needs scorer/selector
// configuration). Unknown names return an error.
func NewByName(name string, rng *stats.RNG) (Allocator, error) {
	switch name {
	case "Random":
		return NewRandom(rng), nil
	case "RoundRobin":
		return NewRoundRobin(), nil
	case "Capacity":
		return NewCapacity(), nil
	case "Economic":
		return NewEconomic(rng), nil
	}
	return nil, fmt.Errorf("alloc: unknown allocator %q", name)
}
