package alloc

import (
	"context"

	"sbqa/internal/model"
)

// StaticEnv is a deterministic environment backed by explicit tables. It
// serves unit tests, examples, and any embedding where intentions are known
// up front rather than computed by live participant policies. It implements
// both the v1 per-provider interface (EnvV1) and, through the Legacy
// adapter, the batched v2 Env.
//
// Missing entries fall back to zero intentions, bid = expected delay, and
// neutral satisfaction (0.5).
type StaticEnv struct {
	// CI maps consumer → provider → intention.
	CI map[model.ConsumerID]map[model.ProviderID]model.Intention
	// PI maps provider → consumer → intention.
	PI map[model.ProviderID]map[model.ConsumerID]model.Intention
	// BidTable maps provider → fixed bid; providers absent from the map
	// bid their expected completion delay for the query.
	BidTable map[model.ProviderID]float64
	// SatC and SatP hold long-run satisfactions; absent entries are 0.5.
	SatC map[model.ConsumerID]float64
	SatP map[model.ProviderID]float64
}

// NewStaticEnv returns an empty StaticEnv ready to be populated.
func NewStaticEnv() *StaticEnv {
	return &StaticEnv{
		CI:       make(map[model.ConsumerID]map[model.ProviderID]model.Intention),
		PI:       make(map[model.ProviderID]map[model.ConsumerID]model.Intention),
		BidTable: make(map[model.ProviderID]float64),
		SatC:     make(map[model.ConsumerID]float64),
		SatP:     make(map[model.ProviderID]float64),
	}
}

// SetCI records consumer c's intention toward provider p.
func (e *StaticEnv) SetCI(c model.ConsumerID, p model.ProviderID, v model.Intention) {
	m, ok := e.CI[c]
	if !ok {
		m = make(map[model.ProviderID]model.Intention)
		e.CI[c] = m
	}
	m[p] = v
}

// SetPI records provider p's intention toward consumer c's queries.
func (e *StaticEnv) SetPI(p model.ProviderID, c model.ConsumerID, v model.Intention) {
	m, ok := e.PI[p]
	if !ok {
		m = make(map[model.ConsumerID]model.Intention)
		e.PI[p] = m
	}
	m[c] = v
}

// Intentions implements the batched v2 Env by looping over the tables.
func (e *StaticEnv) Intentions(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) (IntentionSet, error) {
	return Legacy(e).Intentions(ctx, q, kn)
}

// Bids implements the batched v2 Env by looping over the tables.
func (e *StaticEnv) Bids(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) ([]float64, error) {
	return Legacy(e).Bids(ctx, q, kn)
}

// ProviderSatisfactions implements the batched v2 Env.
func (e *StaticEnv) ProviderSatisfactions(kn []model.ProviderSnapshot) []float64 {
	return Legacy(e).ProviderSatisfactions(kn)
}

// AppendProviderSatisfactions implements SatisfactionAppender.
func (e *StaticEnv) AppendProviderSatisfactions(kn []model.ProviderSnapshot, dst []float64) []float64 {
	return Legacy(e).AppendProviderSatisfactions(kn, dst)
}

// ConsumerIntention implements EnvV1.
func (e *StaticEnv) ConsumerIntention(q model.Query, p model.ProviderSnapshot) model.Intention {
	if m, ok := e.CI[q.Consumer]; ok {
		if v, ok := m[p.ID]; ok {
			return v
		}
	}
	return 0
}

// ProviderIntention implements EnvV1.
func (e *StaticEnv) ProviderIntention(q model.Query, p model.ProviderSnapshot) model.Intention {
	if m, ok := e.PI[p.ID]; ok {
		if v, ok := m[q.Consumer]; ok {
			return v
		}
	}
	return 0
}

// ProviderBid implements EnvV1.
func (e *StaticEnv) ProviderBid(q model.Query, p model.ProviderSnapshot) float64 {
	if b, ok := e.BidTable[p.ID]; ok {
		return b
	}
	return p.ExpectedDelay(q.Work)
}

// ConsumerSatisfaction implements EnvV1 and the v2 Env.
func (e *StaticEnv) ConsumerSatisfaction(c model.ConsumerID) float64 {
	if v, ok := e.SatC[c]; ok {
		return v
	}
	return 0.5
}

// ProviderSatisfaction implements EnvV1.
func (e *StaticEnv) ProviderSatisfaction(p model.ProviderID) float64 {
	if v, ok := e.SatP[p]; ok {
		return v
	}
	return 0.5
}

var _ Env = (*StaticEnv)(nil)
var _ EnvV1 = (*StaticEnv)(nil)
