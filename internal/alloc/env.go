package alloc

import (
	"sbqa/internal/model"
)

// StaticEnv is a deterministic Env backed by explicit tables. It serves unit
// tests, examples, and any embedding where intentions are known up front
// rather than computed by live participant policies.
//
// Missing entries fall back to zero intentions, bid = expected delay, and
// neutral satisfaction (0.5).
type StaticEnv struct {
	// CI maps consumer → provider → intention.
	CI map[model.ConsumerID]map[model.ProviderID]model.Intention
	// PI maps provider → consumer → intention.
	PI map[model.ProviderID]map[model.ConsumerID]model.Intention
	// Bids maps provider → fixed bid; providers absent from the map bid
	// their expected completion delay for the query.
	Bids map[model.ProviderID]float64
	// SatC and SatP hold long-run satisfactions; absent entries are 0.5.
	SatC map[model.ConsumerID]float64
	SatP map[model.ProviderID]float64
}

// NewStaticEnv returns an empty StaticEnv ready to be populated.
func NewStaticEnv() *StaticEnv {
	return &StaticEnv{
		CI:   make(map[model.ConsumerID]map[model.ProviderID]model.Intention),
		PI:   make(map[model.ProviderID]map[model.ConsumerID]model.Intention),
		Bids: make(map[model.ProviderID]float64),
		SatC: make(map[model.ConsumerID]float64),
		SatP: make(map[model.ProviderID]float64),
	}
}

// SetCI records consumer c's intention toward provider p.
func (e *StaticEnv) SetCI(c model.ConsumerID, p model.ProviderID, v model.Intention) {
	m, ok := e.CI[c]
	if !ok {
		m = make(map[model.ProviderID]model.Intention)
		e.CI[c] = m
	}
	m[p] = v
}

// SetPI records provider p's intention toward consumer c's queries.
func (e *StaticEnv) SetPI(p model.ProviderID, c model.ConsumerID, v model.Intention) {
	m, ok := e.PI[p]
	if !ok {
		m = make(map[model.ConsumerID]model.Intention)
		e.PI[p] = m
	}
	m[c] = v
}

// ConsumerIntention implements Env.
func (e *StaticEnv) ConsumerIntention(q model.Query, p model.ProviderSnapshot) model.Intention {
	if m, ok := e.CI[q.Consumer]; ok {
		if v, ok := m[p.ID]; ok {
			return v
		}
	}
	return 0
}

// ProviderIntention implements Env.
func (e *StaticEnv) ProviderIntention(q model.Query, p model.ProviderSnapshot) model.Intention {
	if m, ok := e.PI[p.ID]; ok {
		if v, ok := m[q.Consumer]; ok {
			return v
		}
	}
	return 0
}

// ProviderBid implements Env.
func (e *StaticEnv) ProviderBid(q model.Query, p model.ProviderSnapshot) float64 {
	if b, ok := e.Bids[p.ID]; ok {
		return b
	}
	return p.ExpectedDelay(q.Work)
}

// ConsumerSatisfaction implements Env.
func (e *StaticEnv) ConsumerSatisfaction(c model.ConsumerID) float64 {
	if v, ok := e.SatC[c]; ok {
		return v
	}
	return 0.5
}

// ProviderSatisfaction implements Env.
func (e *StaticEnv) ProviderSatisfaction(p model.ProviderID) float64 {
	if v, ok := e.SatP[p]; ok {
		return v
	}
	return 0.5
}

var _ Env = (*StaticEnv)(nil)
