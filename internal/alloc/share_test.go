package alloc

import (
	"testing"

	"sbqa/internal/model"
)

// shareEnv wraps StaticEnv with explicit devoted-available values.
type shareEnv struct {
	*StaticEnv
	devoted map[model.ProviderID]float64
}

func (e shareEnv) DevotedAvailable(_ model.Query, p model.ProviderSnapshot) float64 {
	return e.devoted[p.ID]
}

func TestShareBasedPicksLargestDevotedBudget(t *testing.T) {
	env := shareEnv{StaticEnv: NewStaticEnv(), devoted: map[model.ProviderID]float64{
		0: 5, 1: 50, 2: 20,
	}}
	a := NewShareBased()
	out := allocate(t, a, env, q(2), snaps(0, 0, 0))
	want := []model.ProviderID{1, 2}
	for i, p := range want {
		if out.Selected[i] != p {
			t.Fatalf("Selected = %v, want %v", out.Selected, want)
		}
	}
	if a.Name() != "ShareBased" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestShareBasedRefusesExhaustedShares(t *testing.T) {
	env := shareEnv{StaticEnv: NewStaticEnv(), devoted: map[model.ProviderID]float64{
		0: 0, 1: -3, 2: 7,
	}}
	out := allocate(t, NewShareBased(), env, q(2), snaps(0, 0, 0))
	// Only provider 2 has budget; the query gets one replica, not two.
	if len(out.Selected) != 1 || out.Selected[0] != 2 {
		t.Fatalf("Selected = %v, want [2]", out.Selected)
	}
}

func TestShareBasedAllExhausted(t *testing.T) {
	env := shareEnv{StaticEnv: NewStaticEnv(), devoted: map[model.ProviderID]float64{
		0: 0, 1: 0,
	}}
	if out := allocate(t, NewShareBased(), env, q(1), snaps(0, 0)); out != nil {
		t.Errorf("all-exhausted shares should fail allocation, got %v", out)
	}
}

func TestShareBasedFallbackWithoutShareEnv(t *testing.T) {
	// Plain Env (no ShareEnv): falls back to available capacity.
	env := NewStaticEnv()
	cands := []model.ProviderSnapshot{
		{ID: 0, Capacity: 1, Utilization: 0.9},
		{ID: 1, Capacity: 1, Utilization: 0.1},
	}
	out := allocate(t, NewShareBased(), env, q(1), cands)
	if out.Selected[0] != 1 {
		t.Errorf("fallback should pick most available capacity: %v", out.Selected)
	}
}

func TestShareBasedEmptyCandidates(t *testing.T) {
	if out := allocate(t, NewShareBased(), NewStaticEnv(), q(1), nil); out != nil {
		t.Errorf("empty candidates: %v", out)
	}
}

func TestShareBasedTieBreaksByID(t *testing.T) {
	env := shareEnv{StaticEnv: NewStaticEnv(), devoted: map[model.ProviderID]float64{
		0: 10, 1: 10, 2: 10,
	}}
	out := allocate(t, NewShareBased(), env, q(1), snaps(0, 0, 0))
	if out.Selected[0] != 0 {
		t.Errorf("tie should break by ID: %v", out.Selected)
	}
}
