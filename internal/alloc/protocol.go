package alloc

import (
	"context"
	"fmt"

	"sbqa/internal/model"
)

// This file defines the v2 intention protocol: the batched, context-first
// environment interface allocators consult during mediation.
//
// The v1 Env was synchronous and per-provider: the SbQA allocator called
// ConsumerIntention(q, p) and ProviderIntention(q, p) in a loop while
// ranking. In a production deployment those calls are network round trips to
// autonomous participants, so the per-provider shape made the hot path
// impossible to parallelize, bound, or route off-process. The v2 Env
// collects everything a mediation needs about the candidate batch Kn in one
// call — the environment implementation decides how (in-process loops, a
// concurrent fan-out with per-participant deadlines, an HTTP scatter-gather)
// and reports, per position, whether the value was reported by the
// participant or imputed from its satisfaction registry state.

// IntentionSet is the outcome of one batched intention collection over a
// candidate batch kn: position-aligned CI_q and PI_q vectors plus the
// provenance of each value. The zero IntentionSet is an empty batch.
type IntentionSet struct {
	// CI holds CI_q[p] for each p in the batch: the consumer's intention to
	// see q allocated to that provider.
	CI []model.Intention

	// PI holds PI_q[p] for each p in the batch: the provider's intention to
	// perform q.
	PI []model.Intention

	// PIImputed marks positions whose PI was imputed from registry state
	// because the provider stayed silent (missed its deadline) or failed.
	// Nil when every provider reported.
	PIImputed []bool

	// PIErr holds, per imputed position, the captured cause
	// (context.DeadlineExceeded on a missed deadline). Nil when every
	// provider reported.
	PIErr []error

	// CIImputed reports that the consumer stayed silent and the whole CI
	// vector was imputed from its registry state; CIErr is the cause.
	CIImputed bool
	CIErr     error
}

// Len returns the batch size.
func (s IntentionSet) Len() int { return len(s.CI) }

// ProviderImputed reports whether position i's PI was imputed.
func (s IntentionSet) ProviderImputed(i int) bool {
	return i < len(s.PIImputed) && s.PIImputed[i]
}

// ImputedCount returns how many batch positions carry an imputed value on
// either side (the whole batch when the consumer was silent).
func (s IntentionSet) ImputedCount() int {
	n := 0
	for i := range s.CI {
		if s.CIImputed || s.ProviderImputed(i) {
			n++
		}
	}
	return n
}

// MarkProviderImputed records that position i's PI was imputed with the
// given cause, allocating the provenance slices on first use.
func (s *IntentionSet) MarkProviderImputed(i int, err error) {
	if s.PIImputed == nil {
		s.PIImputed = make([]bool, len(s.PI))
		s.PIErr = make([]error, len(s.PI))
	}
	s.PIImputed[i] = true
	s.PIErr[i] = err
}

// Env is the mediation environment: the allocator's only window onto the
// participants. One mediation makes at most one Intentions call (SbQA) or
// one Bids call (the economic baseline) over its candidate batch; the
// environment implementation owns transport, concurrency, deadlines, and
// imputation for silent participants.
//
// The query q carries its consumer, so consumer-side calls need no separate
// consumer argument. Satisfaction lookups read mediator-local registry state
// and are therefore synchronous.
//
// Implementations must be safe for the duration of one Allocate call; the
// default in-process implementation lives in the mediator, and Legacy adapts
// any v1 environment (see EnvV1).
type Env interface {
	// Intentions collects CI_q and PI_q over the candidate batch kn. The
	// returned set is position-aligned with kn (Len() == len(kn)). A
	// non-nil error aborts the mediation — implementations return one only
	// for protocol-fatal conditions (ctx canceled), never for individual
	// silent participants, which are imputed and marked instead.
	Intentions(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) (IntentionSet, error)

	// Bids collects the price each provider in the batch asks to perform q
	// (economic baseline only), position-aligned with kn. A silent bidder's
	// bid is imputed as its expected completion delay.
	Bids(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) ([]float64, error)

	// ConsumerSatisfaction returns δs(c) for q's consumer.
	ConsumerSatisfaction(c model.ConsumerID) float64

	// ProviderSatisfactions returns δs(p) for each provider in the batch,
	// position-aligned with kn.
	ProviderSatisfactions(kn []model.ProviderSnapshot) []float64
}

// SatisfactionAppender is an optional Env extension for the zero-allocation
// hot path: AppendProviderSatisfactions appends δs(p) for each provider in
// the batch to dst (position-aligned with kn) and returns the extended
// slice, letting the allocator reuse one scratch buffer across mediations
// instead of receiving a fresh slice per ProviderSatisfactions call.
// Allocators type-assert for it and fall back to ProviderSatisfactions.
type SatisfactionAppender interface {
	AppendProviderSatisfactions(kn []model.ProviderSnapshot, dst []float64) []float64
}

// EnvV1 is the original synchronous, per-provider, context-free environment
// interface (the v1 alloc.Env). In-process embeddings that computed
// intentions from local tables or policies keep implementing it and adapt
// via Legacy; the mediator no longer consumes it directly.
type EnvV1 interface {
	// ConsumerIntention returns CI_q[p]: the intention of q's consumer to
	// see q allocated to provider p.
	ConsumerIntention(q model.Query, p model.ProviderSnapshot) model.Intention

	// ProviderIntention returns PI_q[p]: provider p's intention to
	// perform q.
	ProviderIntention(q model.Query, p model.ProviderSnapshot) model.Intention

	// ProviderBid returns the price provider p asks to perform q
	// (economic baseline only).
	ProviderBid(q model.Query, p model.ProviderSnapshot) float64

	// ConsumerSatisfaction returns δs(c) for q's consumer.
	ConsumerSatisfaction(c model.ConsumerID) float64

	// ProviderSatisfaction returns δs(p).
	ProviderSatisfaction(p model.ProviderID) float64
}

// LegacyEnv adapts a v1 environment to the batched v2 protocol: the batch
// calls loop over the candidates synchronously on the calling goroutine, so
// a v1 embedding migrates mechanically and stays deterministic. The context
// is consulted once per batch call; per-participant deadlines and imputation
// do not apply (a v1 environment cannot be silent).
//
// If the wrapped environment implements ShareEnv, the adapter forwards
// DevotedAvailable so the share-based baseline keeps working.
type LegacyEnv struct {
	V1 EnvV1
}

// Legacy wraps a v1 environment into the v2 protocol.
func Legacy(v1 EnvV1) LegacyEnv { return LegacyEnv{V1: v1} }

// Intentions implements Env by looping over the batch synchronously.
func (l LegacyEnv) Intentions(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) (IntentionSet, error) {
	if err := ctx.Err(); err != nil {
		return IntentionSet{}, err
	}
	set := IntentionSet{
		CI: make([]model.Intention, len(kn)),
		PI: make([]model.Intention, len(kn)),
	}
	for i, snap := range kn {
		set.CI[i] = l.V1.ConsumerIntention(q, snap)
		set.PI[i] = l.V1.ProviderIntention(q, snap)
	}
	return set, nil
}

// Bids implements Env by looping over the batch synchronously.
func (l LegacyEnv) Bids(ctx context.Context, q model.Query, kn []model.ProviderSnapshot) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bids := make([]float64, len(kn))
	for i, snap := range kn {
		bids[i] = l.V1.ProviderBid(q, snap)
	}
	return bids, nil
}

// ConsumerSatisfaction implements Env.
func (l LegacyEnv) ConsumerSatisfaction(c model.ConsumerID) float64 {
	return l.V1.ConsumerSatisfaction(c)
}

// ProviderSatisfactions implements Env.
func (l LegacyEnv) ProviderSatisfactions(kn []model.ProviderSnapshot) []float64 {
	return l.AppendProviderSatisfactions(kn, make([]float64, 0, len(kn)))
}

// AppendProviderSatisfactions implements SatisfactionAppender.
func (l LegacyEnv) AppendProviderSatisfactions(kn []model.ProviderSnapshot, dst []float64) []float64 {
	for _, snap := range kn {
		dst = append(dst, l.V1.ProviderSatisfaction(snap.ID))
	}
	return dst
}

// DevotedAvailable implements ShareEnv by forwarding to the wrapped
// environment when it declares resource shares, falling back to plain
// available capacity otherwise (the same fallback ShareBased applies).
func (l LegacyEnv) DevotedAvailable(q model.Query, p model.ProviderSnapshot) float64 {
	if se, ok := l.V1.(ShareEnv); ok {
		return se.DevotedAvailable(q, p)
	}
	return p.Capacity * (1 - p.Utilization)
}

var _ Env = LegacyEnv{}
var _ ShareEnv = LegacyEnv{}
var _ SatisfactionAppender = LegacyEnv{}

// CheckBatch validates that a batched response is position-aligned with its
// candidate batch — the defensive check allocators apply before indexing.
func CheckBatch(got, want int, what string) error {
	if got != want {
		return fmt.Errorf("alloc: %s batch has %d entries for %d candidates", what, got, want)
	}
	return nil
}
