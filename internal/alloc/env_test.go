package alloc

import (
	"testing"

	"sbqa/internal/model"
)

func TestStaticEnvDefaults(t *testing.T) {
	e := NewStaticEnv()
	query := model.Query{ID: 1, Consumer: 3, N: 1, Work: 4}
	snap := model.ProviderSnapshot{ID: 7, Capacity: 2, PendingWork: 6}
	if got := e.ConsumerIntention(query, snap); got != 0 {
		t.Errorf("default CI = %v, want 0", got)
	}
	if got := e.ProviderIntention(query, snap); got != 0 {
		t.Errorf("default PI = %v, want 0", got)
	}
	if got, want := e.ProviderBid(query, snap), 5.0; got != want {
		t.Errorf("default bid = %v, want expected delay %v", got, want)
	}
	if got := e.ConsumerSatisfaction(3); got != 0.5 {
		t.Errorf("default SatC = %v", got)
	}
	if got := e.ProviderSatisfaction(7); got != 0.5 {
		t.Errorf("default SatP = %v", got)
	}
}

func TestStaticEnvSetters(t *testing.T) {
	e := NewStaticEnv()
	e.SetCI(3, 7, 0.75)
	e.SetPI(7, 3, -0.5)
	e.BidTable[7] = 42
	e.SatC[3] = 0.9
	e.SatP[7] = 0.1

	query := model.Query{ID: 1, Consumer: 3, N: 1, Work: 1}
	snap := model.ProviderSnapshot{ID: 7, Capacity: 1}
	if got := e.ConsumerIntention(query, snap); got != 0.75 {
		t.Errorf("CI = %v", got)
	}
	if got := e.ProviderIntention(query, snap); got != -0.5 {
		t.Errorf("PI = %v", got)
	}
	if got := e.ProviderBid(query, snap); got != 42 {
		t.Errorf("bid = %v", got)
	}
	if got := e.ConsumerSatisfaction(3); got != 0.9 {
		t.Errorf("SatC = %v", got)
	}
	if got := e.ProviderSatisfaction(7); got != 0.1 {
		t.Errorf("SatP = %v", got)
	}

	// Setters on existing maps must not clobber other entries.
	e.SetCI(3, 8, 0.25)
	if got := e.ConsumerIntention(query, snap); got != 0.75 {
		t.Errorf("CI clobbered: %v", got)
	}
	e.SetPI(7, 4, 1)
	if got := e.ProviderIntention(query, snap); got != -0.5 {
		t.Errorf("PI clobbered: %v", got)
	}
}
