package alloc

import (
	"context"
	"testing"

	"sbqa/internal/model"
	"sbqa/internal/stats"
)

// allocate runs Allocate with a background context, failing the test on a
// protocol error — deterministic in-process environments never produce one.
func allocate(t *testing.T, a Allocator, env Env, q model.Query, cands []model.ProviderSnapshot) *model.Allocation {
	t.Helper()
	out, err := a.Allocate(context.Background(), env, q, cands)
	if err != nil {
		t.Fatalf("%s: Allocate error: %v", a.Name(), err)
	}
	return out
}

func snaps(utils ...float64) []model.ProviderSnapshot {
	out := make([]model.ProviderSnapshot, len(utils))
	for i, u := range utils {
		out[i] = model.ProviderSnapshot{ID: model.ProviderID(i), Utilization: u, Capacity: 1}
	}
	return out
}

func q(n int) model.Query {
	return model.Query{ID: 1, Consumer: 0, N: n, Work: 1}
}

func checkContract(t *testing.T, a *model.Allocation, wantSel int, candIDs map[model.ProviderID]bool) {
	t.Helper()
	if len(a.Selected) != wantSel {
		t.Fatalf("selected %d providers, want %d (%v)", len(a.Selected), wantSel, a)
	}
	proposed := map[model.ProviderID]bool{}
	for _, p := range a.Proposed {
		if !candIDs[p] {
			t.Fatalf("proposed foreign provider %d", p)
		}
		if proposed[p] {
			t.Fatalf("duplicate proposed provider %d", p)
		}
		proposed[p] = true
	}
	seen := map[model.ProviderID]bool{}
	for _, p := range a.Selected {
		if !proposed[p] {
			t.Fatalf("selected provider %d not in proposed set", p)
		}
		if seen[p] {
			t.Fatalf("duplicate selected provider %d", p)
		}
		seen[p] = true
	}
}

func idSet(cands []model.ProviderSnapshot) map[model.ProviderID]bool {
	out := map[model.ProviderID]bool{}
	for _, c := range cands {
		out[c.ID] = true
	}
	return out
}

func TestAllBaselinesContract(t *testing.T) {
	env := NewStaticEnv()
	allocators := []Allocator{
		NewRandom(stats.NewRNG(1)),
		NewRoundRobin(),
		NewCapacity(),
		NewEconomic(stats.NewRNG(2)),
	}
	for _, a := range allocators {
		t.Run(a.Name(), func(t *testing.T) {
			cands := snaps(0.1, 0.9, 0.5, 0.3, 0.7)
			for n := 1; n <= 7; n++ {
				out := allocate(t, a, env, q(n), cands)
				if out == nil {
					t.Fatalf("nil allocation for n=%d", n)
				}
				want := n
				if want > len(cands) {
					want = len(cands)
				}
				checkContract(t, out, want, idSet(cands))
			}
			if out := allocate(t, a, env, q(1), nil); out != nil {
				t.Errorf("empty candidates should yield nil, got %v", out)
			}
		})
	}
}

func TestCapacityPicksLeastUtilized(t *testing.T) {
	a := NewCapacity()
	out := allocate(t, a, NewStaticEnv(), q(2), snaps(0.9, 0.1, 0.5, 0.05))
	want := []model.ProviderID{3, 1}
	for i, p := range want {
		if out.Selected[i] != p {
			t.Fatalf("Selected = %v, want %v", out.Selected, want)
		}
	}
}

func TestCapacityTieBreaking(t *testing.T) {
	cands := []model.ProviderSnapshot{
		{ID: 4, Utilization: 0.5, QueueLen: 3, PendingWork: 9},
		{ID: 2, Utilization: 0.5, QueueLen: 1, PendingWork: 5},
		{ID: 7, Utilization: 0.5, QueueLen: 1, PendingWork: 2},
		{ID: 1, Utilization: 0.5, QueueLen: 1, PendingWork: 2},
	}
	out := allocate(t, NewCapacity(), NewStaticEnv(), q(3), cands)
	want := []model.ProviderID{1, 7, 2}
	for i, p := range want {
		if out.Selected[i] != p {
			t.Fatalf("Selected = %v, want %v", out.Selected, want)
		}
	}
}

func TestCapacityDoesNotMutateInput(t *testing.T) {
	cands := snaps(0.9, 0.1)
	allocate(t, NewCapacity(), NewStaticEnv(), q(1), cands)
	if cands[0].ID != 0 || cands[1].ID != 1 {
		t.Error("candidate order mutated")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	a := NewRoundRobin()
	env := NewStaticEnv()
	cands := snaps(0, 0, 0)
	counts := map[model.ProviderID]int{}
	for i := 0; i < 9; i++ {
		out := allocate(t, a, env, q(1), cands)
		counts[out.Selected[0]]++
	}
	for id, c := range counts {
		if c != 3 {
			t.Errorf("provider %d served %d queries, want 3 (rotation broken)", id, c)
		}
	}
}

func TestRandomIsRoughlyUniform(t *testing.T) {
	a := NewRandom(stats.NewRNG(5))
	env := NewStaticEnv()
	cands := snaps(0, 0, 0, 0)
	counts := map[model.ProviderID]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		out := allocate(t, a, env, q(1), cands)
		counts[out.Selected[0]]++
	}
	for id, c := range counts {
		if c < trials/4-trials/20 || c > trials/4+trials/20 {
			t.Errorf("provider %d served %d, want ~%d", id, c, trials/4)
		}
	}
}

func TestEconomicPicksCheapest(t *testing.T) {
	env := NewStaticEnv()
	env.BidTable[0] = 30
	env.BidTable[1] = 10
	env.BidTable[2] = 20
	a := NewEconomic(stats.NewRNG(1))
	a.BidSample = 3
	out := allocate(t, a, env, q(1), snaps(0, 0, 0))
	if len(out.Selected) != 1 || out.Selected[0] != 1 {
		t.Fatalf("Selected = %v, want [1]", out.Selected)
	}
	// All three bidders were contacted → proposed.
	if len(out.Proposed) != 3 {
		t.Fatalf("Proposed = %v, want all 3 bidders", out.Proposed)
	}
	// Scores are negated bids, best (cheapest) first.
	if out.Scores[0] != -10 {
		t.Errorf("Scores[0] = %v, want -10", out.Scores[0])
	}
}

func TestEconomicBidSampleBounds(t *testing.T) {
	env := NewStaticEnv()
	a := NewEconomic(stats.NewRNG(3))
	a.BidSample = 2
	// Sample must be raised to cover q.N.
	out := allocate(t, a, env, q(4), snaps(0, 0, 0, 0, 0, 0))
	if len(out.Selected) != 4 {
		t.Fatalf("Selected = %v, want 4 providers", out.Selected)
	}
	if len(out.Proposed) < 4 {
		t.Fatalf("Proposed = %v, want >= 4 bidders", out.Proposed)
	}
	// Zero BidSample falls back to the default.
	a2 := NewEconomic(stats.NewRNG(4))
	a2.BidSample = 0
	out2 := allocate(t, a2, env, q(1), snaps(make([]float64, 30)...))
	if len(out2.Proposed) != DefaultBidSample {
		t.Errorf("default bid sample = %d, want %d", len(out2.Proposed), DefaultBidSample)
	}
}

func TestEconomicDefaultBidIsExpectedDelay(t *testing.T) {
	env := NewStaticEnv() // no explicit bids
	cands := []model.ProviderSnapshot{
		{ID: 0, Capacity: 1, PendingWork: 50},
		{ID: 1, Capacity: 10, PendingWork: 0},
	}
	a := NewEconomic(stats.NewRNG(1))
	a.BidSample = 2
	out := allocate(t, a, env, q(1), cands)
	if out.Selected[0] != 1 {
		t.Errorf("fast idle provider should win the auction, got %v", out.Selected)
	}
}

func TestNewByName(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, name := range []string{"Random", "RoundRobin", "Capacity", "Economic"} {
		a, err := NewByName(name, rng)
		if err != nil || a == nil || a.Name() != name {
			t.Errorf("NewByName(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := NewByName("Nope", rng); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestNilRNGConstructors(t *testing.T) {
	if NewRandom(nil) == nil || NewEconomic(nil) == nil {
		t.Error("nil-rng constructors failed")
	}
}
