package alloc

import (
	"context"
	"sort"

	"sbqa/internal/model"
)

// ShareEnv is the optional Env extension used by the share-based allocator:
// it reports how much of provider p's capacity is devoted to — and still
// available for — q's consumer under the provider's declared resource
// shares. Environments whose providers declare no shares fall back to plain
// available capacity.
type ShareEnv interface {
	// DevotedAvailable returns the work-per-second capacity provider p
	// still has available for q's consumer: share(p, q.Consumer)·capacity
	// minus the work rate already in use by that consumer.
	DevotedAvailable(q model.Query, p model.ProviderSnapshot) float64
}

// ShareBased reproduces BOINC's native resource-share dispatching, which
// the paper's §IV uses as its motivating example: every volunteer devotes a
// fixed fraction of its resources to each project, and a project can never
// use more than its fraction — "cb cannot use more than the assigned 20% of
// computational resources even if ca is not generating queries". The
// allocator picks the q.N providers with the most devoted-available
// capacity for the query's consumer, and refuses providers whose devoted
// share is exhausted, wasting whatever idle capacity is reserved for other
// consumers.
//
// Contrast with SbQA, which lets providers express the same affinities as
// intentions that the mediation can trade against load — exploiting idle
// capacity while still respecting interests (the paper's pitch).
type ShareBased struct{}

// NewShareBased returns a share-based allocator.
func NewShareBased() *ShareBased { return &ShareBased{} }

// Name implements Allocator.
func (*ShareBased) Name() string { return "ShareBased" }

// Allocate implements Allocator.
func (*ShareBased) Allocate(_ context.Context, env Env, q model.Query, candidates []model.ProviderSnapshot) (*model.Allocation, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	se, _ := env.(ShareEnv)

	type avail struct {
		snap model.ProviderSnapshot
		cap  float64
	}
	eligible := make([]avail, 0, len(candidates))
	for _, snap := range candidates {
		var devoted float64
		if se != nil {
			devoted = se.DevotedAvailable(q, snap)
		} else {
			// No share information: plain available capacity.
			devoted = snap.Capacity * (1 - snap.Utilization)
		}
		if devoted <= 0 {
			continue // share exhausted: BOINC will not over-commit it
		}
		eligible = append(eligible, avail{snap: snap, cap: devoted})
	}
	if len(eligible) == 0 {
		return nil, nil
	}
	sort.SliceStable(eligible, func(i, j int) bool {
		if eligible[i].cap != eligible[j].cap {
			return eligible[i].cap > eligible[j].cap
		}
		return eligible[i].snap.ID < eligible[j].snap.ID
	})
	n := resultN(q, len(eligible))
	sel := make([]model.ProviderSnapshot, 0, n)
	for i := 0; i < n; i++ {
		sel = append(sel, eligible[i].snap)
	}
	return newAllocation(q, sel), nil
}
