// Package knbest implements the KnBest candidate-selection strategy
// (Quiané-Ruiz, Lamarre, Valduriez, DASFAA 2007) used as the first stage of
// the SbQA mediation:
//
//  1. from the set P_q of providers able to perform query q, draw a set K
//     of k providers uniformly at random;
//  2. keep the set Kn of the kn least-utilized providers of K;
//  3. (performed by the caller) rank Kn by score and allocate q to the
//     min(q.n, kn) best.
//
// Varying k and kn adapts the allocation process to the application: kn close
// to q.n makes the process a load balancer (the score hardly matters), while
// k = kn = |P_q| makes it a pure interest matcher. The random first stage
// bounds the number of intention requests per query, which is what makes the
// process scale to large provider populations.
package knbest

import (
	"fmt"
	"sort"

	"sbqa/internal/model"
	"sbqa/internal/stats"
)

// Params configures the two KnBest stages.
type Params struct {
	// K is the number of providers drawn at random from P_q (stage 1).
	// K <= 0 or K >= |P_q| disables sampling: all of P_q is considered.
	K int

	// Kn is the number of least-utilized providers kept from K (stage 2).
	// Kn <= 0 or Kn >= |K| disables the utilization filter.
	Kn int
}

// DefaultParams returns the configuration used by the SbQA demo defaults:
// a moderate random sample with a utilization filter that still leaves the
// scorer a real choice.
func DefaultParams() Params { return Params{K: 20, Kn: 10} }

// Validate reports whether the parameters are coherent (Kn ≤ K when both are
// set).
func (p Params) Validate() error {
	if p.K > 0 && p.Kn > p.K {
		return fmt.Errorf("knbest: kn=%d exceeds k=%d", p.Kn, p.K)
	}
	return nil
}

// String renders the parameters for experiment logs.
func (p Params) String() string { return fmt.Sprintf("knbest(k=%d,kn=%d)", p.K, p.Kn) }

// Selector applies the two KnBest stages with a private random stream.
// It is not safe for concurrent use.
type Selector struct {
	params Params
	rng    *stats.RNG

	// scratch buffers reused across calls to avoid per-query allocation.
	idxBuf []int
	sample []model.ProviderSnapshot
	sorter snapSorter
}

// snapSorter is the selector's reusable sort.Interface over its sample
// scratch: keeping it as a struct field (rather than a sort.SliceStable
// closure) makes the stage-2 sort allocation-free. The comparator is the
// KnBest tiebreak chain — utilization, then queue length, then ID — and the
// sort is stable, so the result is byte-identical to the historical
// sort.SliceStable ordering.
type snapSorter struct{ s []model.ProviderSnapshot }

func (x *snapSorter) Len() int      { return len(x.s) }
func (x *snapSorter) Swap(i, j int) { x.s[i], x.s[j] = x.s[j], x.s[i] }
func (x *snapSorter) Less(i, j int) bool {
	a, b := x.s[i], x.s[j]
	if a.Utilization != b.Utilization {
		return a.Utilization < b.Utilization
	}
	if a.QueueLen != b.QueueLen {
		return a.QueueLen < b.QueueLen
	}
	return a.ID < b.ID
}

// NewSelector returns a selector with the given parameters and RNG. A nil
// rng gets a fixed-seed stream (useful in tests).
func NewSelector(params Params, rng *stats.RNG) *Selector {
	if rng == nil {
		rng = stats.NewRNG(1)
	}
	return &Selector{params: params, rng: rng}
}

// Params returns the selector's configuration.
func (s *Selector) Params() Params { return s.params }

// RNGState exposes the sampling stream's internal state for persistence;
// pair with RestoreRNGState. Same threading contract as Select: the selector
// (and thus its RNG) belongs to the mediating goroutine.
func (s *Selector) RNGState() [4]uint64 { return s.rng.State() }

// RestoreRNGState resumes the sampling stream from a persisted state, so a
// restarted mediator draws the same stage-1 samples an uninterrupted run
// would have.
func (s *Selector) RestoreRNGState(state [4]uint64) { s.rng.Restore(state) }

// SetParams replaces the configuration (Scenario 6 sweeps kn at run time).
// Like Select, it must run on the mediating goroutine; callers that retune
// from other goroutines should hold their parameters in an atomic snapshot
// and pass them per call through SelectWith (see core.SbQA.SetParams).
func (s *Selector) SetParams(p Params) { s.params = p }

// Select applies both stages under the selector's stored parameters.
func (s *Selector) Select(candidates []model.ProviderSnapshot) []model.ProviderSnapshot {
	return s.SelectWith(s.params, candidates)
}

// SelectWith applies both stages to the candidate snapshots under the given
// parameters and returns the retained providers (set Kn), ordered by
// increasing utilization. The input slice is not modified. Taking the
// parameters per call lets callers keep them in a lock-free snapshot that a
// tuner swaps while mediations are in flight; the selector itself (its RNG
// and scratch buffers) still belongs to a single goroutine.
//
// The returned slice is selector-owned scratch: it is valid until the next
// Select/SelectWith call, which overwrites it. Callers that need the set
// beyond the current mediation must copy it.
func (s *Selector) SelectWith(params Params, candidates []model.ProviderSnapshot) []model.ProviderSnapshot {
	n := len(candidates)
	if n == 0 {
		return nil
	}

	// Stage 1: K random providers from P_q.
	k := params.K
	if k <= 0 || k > n {
		k = n
	}
	s.idxBuf = s.rng.SampleK(n, k, s.idxBuf)
	if cap(s.sample) < k {
		s.sample = make([]model.ProviderSnapshot, 0, k)
	}
	sample := s.sample[:0]
	for _, idx := range s.idxBuf {
		sample = append(sample, candidates[idx])
	}
	s.sample = sample

	// Stage 2: the kn least-utilized providers of K. Ties break by queue
	// length, then by ID for determinism; the stable sort over the reusable
	// sorter reproduces the historical sort.SliceStable order exactly.
	s.sorter.s = sample
	sort.Stable(&s.sorter)
	s.sorter.s = nil
	kn := params.Kn
	if kn <= 0 || kn > len(sample) {
		kn = len(sample)
	}
	return sample[:kn]
}
