package knbest

import (
	"math"
	"testing"

	"sbqa/internal/model"
	"sbqa/internal/stats"
)

func snapshots(utils ...float64) []model.ProviderSnapshot {
	out := make([]model.ProviderSnapshot, len(utils))
	for i, u := range utils {
		out[i] = model.ProviderSnapshot{ID: model.ProviderID(i), Utilization: u, Capacity: 1}
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{K: 10, Kn: 5}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{K: 5, Kn: 10}).Validate(); err == nil {
		t.Error("kn > k accepted")
	}
	if err := (Params{K: 0, Kn: 10}).Validate(); err != nil {
		t.Errorf("disabled stage-1 rejected: %v", err)
	}
	if DefaultParams().Validate() != nil {
		t.Error("DefaultParams invalid")
	}
	if (Params{K: 3, Kn: 2}).String() == "" {
		t.Error("String empty")
	}
}

func TestSelectSizes(t *testing.T) {
	tests := []struct {
		name    string
		k, kn   int
		nCands  int
		wantLen int
	}{
		{"normal", 4, 2, 10, 2},
		{"kn-disabled", 4, 0, 10, 4},
		{"k-disabled", 0, 3, 10, 3},
		{"k-exceeds-pop", 99, 5, 10, 5},
		{"kn-exceeds-k", 4, 99, 10, 4},
		{"both-disabled", 0, 0, 10, 10},
		{"single-candidate", 5, 3, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSelector(Params{K: tt.k, Kn: tt.kn}, stats.NewRNG(1))
			cands := snapshots(make([]float64, tt.nCands)...)
			got := s.Select(cands)
			if len(got) != tt.wantLen {
				t.Errorf("got %d providers, want %d", len(got), tt.wantLen)
			}
		})
	}
}

func TestSelectEmpty(t *testing.T) {
	s := NewSelector(DefaultParams(), stats.NewRNG(1))
	if got := s.Select(nil); got != nil {
		t.Errorf("Select(nil) = %v", got)
	}
}

func TestSelectKeepsLeastUtilized(t *testing.T) {
	// With stage 1 disabled, stage 2 must return exactly the kn least
	// utilized, in increasing utilization order.
	s := NewSelector(Params{K: 0, Kn: 3}, stats.NewRNG(2))
	cands := snapshots(0.9, 0.1, 0.5, 0.3, 0.7)
	got := s.Select(cands)
	wantIDs := []model.ProviderID{1, 3, 2}
	for i, want := range wantIDs {
		if got[i].ID != want {
			t.Fatalf("Select[%d] = %d, want %d (%v)", i, got[i].ID, want, got)
		}
	}
}

func TestSelectTieBreaking(t *testing.T) {
	s := NewSelector(Params{K: 0, Kn: 2}, stats.NewRNG(3))
	cands := []model.ProviderSnapshot{
		{ID: 5, Utilization: 0.5, QueueLen: 2},
		{ID: 1, Utilization: 0.5, QueueLen: 2},
		{ID: 3, Utilization: 0.5, QueueLen: 1},
	}
	got := s.Select(cands)
	if got[0].ID != 3 { // shorter queue first
		t.Errorf("queue tie-break failed: %v", got)
	}
	if got[1].ID != 1 { // then lower ID
		t.Errorf("ID tie-break failed: %v", got)
	}
}

func TestSelectSubsetInvariant(t *testing.T) {
	// Every returned provider must come from the candidate set, no
	// duplicates, and utilizations must be sorted non-decreasing.
	rng := stats.NewRNG(4)
	s := NewSelector(Params{K: 7, Kn: 4}, stats.NewRNG(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		cands := make([]model.ProviderSnapshot, n)
		for i := range cands {
			cands[i] = model.ProviderSnapshot{ID: model.ProviderID(i), Utilization: rng.Float64()}
		}
		got := s.Select(cands)
		seen := map[model.ProviderID]bool{}
		for i, snap := range got {
			if snap.ID < 0 || int(snap.ID) >= n {
				t.Fatalf("foreign provider %d", snap.ID)
			}
			if seen[snap.ID] {
				t.Fatalf("duplicate provider %d", snap.ID)
			}
			seen[snap.ID] = true
			if i > 0 && got[i-1].Utilization > snap.Utilization {
				t.Fatalf("utilization not sorted: %v", got)
			}
		}
	}
}

func TestSelectDoesNotMutateInput(t *testing.T) {
	s := NewSelector(Params{K: 2, Kn: 1}, stats.NewRNG(6))
	cands := snapshots(0.9, 0.1, 0.5)
	_ = s.Select(cands)
	for i, u := range []float64{0.9, 0.1, 0.5} {
		if cands[i].Utilization != u || cands[i].ID != model.ProviderID(i) {
			t.Fatalf("input mutated: %v", cands)
		}
	}
}

func TestStage1Uniformity(t *testing.T) {
	// With kn disabled, each of 10 providers should appear in K=3 samples
	// with probability 3/10.
	s := NewSelector(Params{K: 3, Kn: 0}, stats.NewRNG(7))
	cands := snapshots(make([]float64, 10)...)
	counts := make([]int, 10)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, snap := range s.Select(cands) {
			counts[snap.ID]++
		}
	}
	want := float64(trials) * 0.3
	for id, c := range counts {
		if math.Abs(float64(c)-want) > want*0.08 {
			t.Errorf("provider %d sampled %d times, want ~%.0f", id, c, want)
		}
	}
}

func TestSetParams(t *testing.T) {
	s := NewSelector(Params{K: 5, Kn: 5}, stats.NewRNG(8))
	s.SetParams(Params{K: 2, Kn: 1})
	if s.Params().K != 2 || s.Params().Kn != 1 {
		t.Errorf("SetParams not applied: %+v", s.Params())
	}
	got := s.Select(snapshots(0.1, 0.2, 0.3, 0.4))
	if len(got) != 1 {
		t.Errorf("updated params not used: %v", got)
	}
}

func TestNilRNGDefault(t *testing.T) {
	s := NewSelector(DefaultParams(), nil)
	if got := s.Select(snapshots(0.1, 0.2)); len(got) != 2 {
		t.Errorf("nil-rng selector broken: %v", got)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	cands := snapshots(0.5, 0.1, 0.9, 0.3, 0.7, 0.2, 0.8)
	a := NewSelector(Params{K: 4, Kn: 2}, stats.NewRNG(42))
	b := NewSelector(Params{K: 4, Kn: 2}, stats.NewRNG(42))
	for i := 0; i < 100; i++ {
		ga, gb := a.Select(cands), b.Select(cands)
		for j := range ga {
			if ga[j].ID != gb[j].ID {
				t.Fatalf("selection diverged at round %d", i)
			}
		}
	}
}
