// Command sbqalab drives the workload laboratory: it lists the registered
// hypothesis catalog, runs individual hypotheses against the real mediation
// engine under the virtual clock, and regenerates hypotheses/FINDINGS.md.
//
// Usage:
//
//	sbqalab list                           # show the catalog
//	sbqalab run -id H3-kn-heavy-tail       # run one hypothesis at full scale
//	sbqalab run -short                     # run everything at CI scale
//	sbqalab run -id H1-flash-crowd -out d/ # also write each report as JSON
//	sbqalab report -o hypotheses/FINDINGS.md
//
// Same seeds ⇒ byte-identical reports and findings document.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sbqa/internal/lab"

	// Register the hypothesis catalog.
	_ "sbqa/hypotheses"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = runList()
	case "run":
		err = runRun(os.Args[2:])
	case "report":
		err = runReport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sbqalab: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sbqalab:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  sbqalab list                     list the registered hypothesis catalog
  sbqalab run [flags]              run hypotheses and print verdicts
      -id ID      run a single hypothesis (default: all)
      -short      CI scale instead of full scale
      -out DIR    write each scenario report as JSON under DIR
  sbqalab report [flags]           regenerate the findings document
      -short      CI scale instead of full scale
      -o FILE     output path (default: stdout)
`)
}

func runList() error {
	hs := lab.Registered()
	if len(hs) == 0 {
		return fmt.Errorf("no hypotheses registered")
	}
	for _, h := range hs {
		fmt.Printf("%-24s %s\n", h.ID, h.Claim)
	}
	return nil
}

func scaleOf(short bool) lab.Scale {
	if short {
		return lab.Short
	}
	return lab.Full
}

func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	id := fs.String("id", "", "run a single hypothesis by ID (default: all)")
	short := fs.Bool("short", false, "run at CI scale instead of full scale")
	out := fs.String("out", "", "directory to write each scenario report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	hs := lab.Registered()
	if *id != "" {
		kept := hs[:0]
		for _, h := range hs {
			if h.ID == *id {
				kept = append(kept, h)
			}
		}
		hs = kept
		if len(hs) == 0 {
			return fmt.Errorf("unknown hypothesis %q (see `sbqalab list`)", *id)
		}
	}

	scale := scaleOf(*short)
	for _, h := range hs {
		res, err := h.Evaluate(scale)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %-12s %s\n", h.ID, res.Outcome.Verdict, res.Outcome.Detail)
		if *out != "" {
			if err := writeReports(*out, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeReports(dir string, res lab.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range res.Reports {
		b, err := r.Encode()
		if err != nil {
			return err
		}
		name := strings.ReplaceAll(r.Scenario.Name, "/", "_") + ".json"
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	short := fs.Bool("short", false, "render at CI scale instead of full scale")
	out := fs.String("o", "", "output path (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	doc, err := lab.RenderFindings(scaleOf(*short))
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(doc)
		return nil
	}
	return os.WriteFile(*out, []byte(doc), 0o644)
}
