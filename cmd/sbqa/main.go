// Command sbqa runs the SbQA experiment scenarios and prints the paper-style
// tables. It can also export every run's time series as CSV for plotting.
//
// Usage:
//
//	sbqa -scenario all                         # run every scenario at paper scale
//	sbqa -scenario 4 -volunteers 200           # scale up scenario 4
//	sbqa -scenario 3 -csv out/                 # export time series
//	sbqa -scenario 2 -duration 5000 -seed 11
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sbqa/internal/experiments"
)

func main() {
	var (
		scenario   = flag.String("scenario", "all", "scenario to run: 1..7, 'm' (motivating example), 'v' (malicious validation study), 'r' (replication study), 'a' (adwords study), or 'all'")
		volunteers = flag.Int("volunteers", 100, "provider population size")
		duration   = flag.Float64("duration", 2000, "simulated seconds per run")
		seed       = flag.Uint64("seed", 42, "random seed (runs are reproducible under it)")
		load       = flag.Float64("load", 0.7, "offered load factor ρ")
		csvDir     = flag.String("csv", "", "directory to write per-technique time-series CSVs (optional)")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	opt := experiments.Options{
		Volunteers: *volunteers,
		Duration:   *duration,
		Seed:       *seed,
		Load:       *load,
	}
	if !*quiet {
		opt.Out = os.Stderr
	}

	runners := map[string]func(experiments.Options) (*experiments.ScenarioResult, error){
		"1": experiments.Scenario1,
		"2": experiments.Scenario2,
		"3": experiments.Scenario3,
		"4": experiments.Scenario4,
		"5": experiments.Scenario5,
		"6": experiments.Scenario6,
		"7": experiments.Scenario7,
		"m": experiments.MotivatingExample,
		"v": experiments.MaliciousStudy,
		"r": experiments.ReplicationStudy,
		"a": experiments.AdWordsStudy,
	}

	var order []string
	if *scenario == "all" {
		order = []string{"1", "2", "3", "4", "5", "6", "7", "m", "v", "r", "a"}
	} else {
		for _, s := range strings.Split(*scenario, ",") {
			s = strings.TrimSpace(s)
			if _, ok := runners[s]; !ok {
				fmt.Fprintf(os.Stderr, "sbqa: unknown scenario %q (want 1..7, m, v, r, a, or all)\n", s)
				os.Exit(2)
			}
			order = append(order, s)
		}
	}

	for _, key := range order {
		res, err := runners[key](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbqa: scenario %s: %v\n", key, err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sbqa: render: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, key, res); err != nil {
				fmt.Fprintf(os.Stderr, "sbqa: csv: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// writeCSVs exports each technique's time series under
// <dir>/scenario<k>_<technique>.csv.
func writeCSVs(dir, key string, res *experiments.ScenarioResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, col := range res.Collectors {
		clean := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				return r
			default:
				return '_'
			}
		}, name)
		path := filepath.Join(dir, fmt.Sprintf("scenario%s_%s.csv", key, clean))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := col.WriteSeriesCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
