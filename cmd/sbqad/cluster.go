package main

// Cluster mode: with -node-id (and usually -peers) the daemon joins a
// static mediation cluster. A consistent-hash ring over consumer IDs
// decides which node owns each consumer; this file is the gateway half
// of that contract — transparent forwarding of misrouted traffic to the
// owner, the /v1/cluster control surface, and the intra-cluster
// replication endpoints the internal/cluster node drives.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sbqa"
)

// clusterSettings carries the cluster flags from main to the gateway.
type clusterSettings struct {
	nodeID            string
	peers             []sbqa.ClusterPeer
	heartbeatInterval time.Duration
	heartbeatTimeout  time.Duration
	replicateInterval time.Duration
	stateDir          string
}

// parsePeers decodes the -peers flag: comma-separated id=baseURL pairs,
// e.g. "b=http://10.0.0.2:8080,c=http://10.0.0.3:8080".
func parsePeers(s string) ([]sbqa.ClusterPeer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var peers []sbqa.ClusterPeer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad peer %q: want id=baseURL", part)
		}
		if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
			return nil, fmt.Errorf("bad peer %q: address must be a base URL (http[s]://host:port)", part)
		}
		peers = append(peers, sbqa.ClusterPeer{ID: id, Addr: strings.TrimRight(addr, "/")})
	}
	return peers, nil
}

// forwardTimeout is the ceiling on one forwarded request when the
// client supplied no deadline of its own: a dead owner must become a
// typed 503, never a hung handler. The client's own deadline (via its
// request context) propagates through and can only shorten this.
const forwardTimeout = 30 * time.Second

// clusterMetrics counts the gateway's forwarding activity for
// /v1/metrics. Latency is accumulated in microseconds so the Prometheus
// _sum/_count pair can be derived without floats in the hot path.
type clusterMetrics struct {
	fwdQueries      atomic.Uint64 // queries forwarded (attempts)
	fwdConsumers    atomic.Uint64 // consumer registrations forwarded
	fwdErrors       atomic.Uint64 // forwards failed in transport
	fwdLatencyMicro atomic.Uint64 // total forward round-trip time
	fwdCompleted    atomic.Uint64 // latency observations
	notOwner        atomic.Uint64 // forwarded hops refused: ring disagreement
	peerDown        atomic.Uint64 // requests refused: owner down
}

func (c *clusterMetrics) observe(d time.Duration, ok bool) {
	c.fwdCompleted.Add(1)
	c.fwdLatencyMicro.Add(uint64(d / time.Microsecond))
	if !ok {
		c.fwdErrors.Add(1)
	}
}

// initCluster builds and starts the cluster node against the freshly
// built engine: the engine's registry receives failover replays, its
// persistence store (when -state-dir is set) feeds WAL shipping, and
// the engine's submit guard enforces ownership below the HTTP layer.
func (g *gateway) initCluster(cs *clusterSettings) error {
	cfg := sbqa.ClusterConfig{
		Self:              sbqa.ClusterPeer{ID: cs.nodeID},
		Peers:             cs.peers,
		HeartbeatInterval: cs.heartbeatInterval,
		HeartbeatTimeout:  cs.heartbeatTimeout,
		ReplicateInterval: cs.replicateInterval,
		Registry:          g.eng.Registry(),
		Observer:          g.hub.observer(),
		Logf:              log.Printf,
	}
	if ps := g.eng.PersistStore(); ps != nil {
		cfg.Store = ps
		cfg.StateDir = cs.stateDir
	}
	node, err := sbqa.NewClusterNode(cfg)
	if err != nil {
		return err
	}
	g.node = node
	g.eng.SetSubmitGuard(node.SubmitGuard())
	node.Start()
	return nil
}

// writeRoutedError answers a typed routing failure: the standard error
// JSON plus a machine-readable code ("not_owner" | "peer_down") and,
// when known, the owner so clients can re-aim instead of blind-retrying.
func writeRoutedError(w http.ResponseWriter, code string, owner sbqa.ClusterPeer, err error) {
	body := map[string]string{"error": err.Error(), "code": code}
	if owner.ID != "" {
		body["owner"] = owner.ID
		if owner.Addr != "" {
			body["owner_addr"] = owner.Addr
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, body)
}

// routeOrForward is the ownership gate on every consumer-keyed
// endpoint. It returns true when this node owns the consumer and the
// caller should proceed locally. Otherwise it has already answered:
// the request was forwarded to the owner and its response relayed, or a
// typed 503 was written (not_owner for a forwarded hop that still is
// not ours — one hop only, never a loop — peer_down for an unreachable
// owner).
func (g *gateway) routeOrForward(w http.ResponseWriter, r *http.Request, consumer int, path string, counter *atomic.Uint64, payload any) bool {
	if g.node == nil {
		return true
	}
	owner, self, err := g.node.Route(sbqa.ConsumerID(consumer))
	if self {
		return true
	}
	if r.Header.Get(sbqa.ClusterForwardedFromHeader) != "" {
		g.cmx.notOwner.Add(1)
		writeRoutedError(w, "not_owner", owner,
			fmt.Errorf("consumer %d is owned by node %s; sender's ring disagrees with this node's", consumer, owner.ID))
		return false
	}
	if err != nil {
		g.cmx.peerDown.Add(1)
		writeRoutedError(w, "peer_down", owner,
			fmt.Errorf("consumer %d is owned by node %s, which is down", consumer, owner.ID))
		return false
	}
	counter.Add(1)
	g.forward(w, r, owner, path, payload)
	return false
}

// forward re-issues the decoded request to the owner's internal forward
// endpoint and relays the response verbatim. The outbound request runs
// on the inbound request's context — the client's cancellation and
// deadline propagate — capped by forwardTimeout so a silent owner
// yields a typed 503 rather than a hang.
func (g *gateway) forward(w http.ResponseWriter, r *http.Request, owner sbqa.ClusterPeer, path string, payload any) {
	body, err := json.Marshal(payload)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), forwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner.Addr+path, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(sbqa.ClusterForwardedFromHeader, g.node.Self().ID)
	// A sampled submission propagates its trace context to the owner as a
	// W3C traceparent, so both nodes' segments share one trace ID.
	tc, traced := traceContextFrom(r.Context())
	if traced {
		req.Header.Set(sbqa.TraceparentHeader, sbqa.FormatTraceparent(tc))
	}
	fwStart := sbqa.TraceNow()
	start := time.Now()
	resp, err := g.forwardClient.Do(req)
	g.cmx.observe(time.Since(start), err == nil)
	if traced {
		if tr := g.engine().Tracer(); tr != nil {
			tr.RecordSpan(tc.ID, sbqa.TraceSpan{
				Name: sbqa.StageForward, Class: owner.ID,
				Start: fwStart, End: sbqa.TraceNow(),
			})
			errStr := ""
			if err != nil {
				errStr = err.Error()
			}
			// This node's segment ends here; the owner records the rest of
			// the pipeline under the same trace ID.
			tr.Finish(tc.ID, "forwarded", errStr, nil)
		}
	}
	if err != nil {
		writeRoutedError(w, "peer_down", owner, fmt.Errorf("forwarding to node %s: %w", owner.ID, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleCluster serves GET /v1/cluster: ring membership, peer health,
// and replication positions as seen by this node.
func (g *gateway) handleCluster(w http.ResponseWriter, _ *http.Request) {
	if g.node == nil {
		writeError(w, http.StatusNotFound, errors.New("cluster mode disabled (run with -node-id)"))
		return
	}
	writeJSON(w, http.StatusOK, g.node.Status())
}

// maxSegmentBody bounds one shipped WAL segment; segments rotate at a
// few MiB, so far below this.
const maxSegmentBody = 256 << 20

// handleSegmentsGet lists the segment seqs held for ?origin=<node> —
// the shipping handshake's inventory side.
func (g *gateway) handleSegmentsGet(w http.ResponseWriter, r *http.Request) {
	if g.node == nil {
		writeError(w, http.StatusNotFound, errors.New("cluster mode disabled"))
		return
	}
	seqs, err := g.node.HeldSegments(r.URL.Query().Get("origin"))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if seqs == nil {
		seqs = []uint64{}
	}
	writeJSON(w, http.StatusOK, map[string][]uint64{"seqs": seqs})
}

// handleSegmentsPost accepts one shipped WAL segment (raw journal bytes
// as the body) for ?origin=<node>&seq=<n>. Validation and atomic
// placement happen in the cluster node; a bad transfer is a 400 and
// leaves nothing behind.
func (g *gateway) handleSegmentsPost(w http.ResponseWriter, r *http.Request) {
	if g.node == nil {
		writeError(w, http.StatusNotFound, errors.New("cluster mode disabled"))
		return
	}
	origin := r.URL.Query().Get("origin")
	seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad seq: %w", err))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxSegmentBody)
	if err := g.node.AcceptSegment(origin, seq, r.Body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"seq": seq})
}

// proxySSE streams the owner's /v1/events to this gateway's subscriber
// — the SSE leg of transparent forwarding. The stream lives until the
// client disconnects, the owner ends it, or this gateway shuts down.
func (g *gateway) proxySSE(w http.ResponseWriter, r *http.Request, owner sbqa.ClusterPeer, consumer string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-g.shuttingDown:
			cancel()
		case <-ctx.Done():
		}
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		owner.Addr+"/v1/events?consumer="+consumer, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set(sbqa.ClusterForwardedFromHeader, g.node.Self().ID)
	resp, err := g.forwardClient.Do(req)
	if err != nil {
		writeRoutedError(w, "peer_down", owner, fmt.Errorf("subscribing at node %s: %w", owner.ID, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			flusher.Flush()
		}
		if err != nil {
			return
		}
	}
}
