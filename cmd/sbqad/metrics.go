package main

// GET /v1/metrics — the engine's counters in Prometheus text exposition
// format (version 0.0.4), so the daemon is scrapeable without parsing the
// JSON stats endpoint. Hand-rolled writer: the format is three line shapes
// (# HELP, # TYPE, sample), not worth a client-library dependency.

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"

	"sbqa"
)

// buildVersion resolves the daemon's version from the embedded module build
// info once at startup: the module version when built from a tagged module,
// else the VCS revision, else "dev".
var buildVersion = func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "dev"
}()

// metricsWriter accumulates one exposition document.
type metricsWriter struct {
	b strings.Builder
}

// header emits the HELP/TYPE preamble of one metric family.
func (m *metricsWriter) header(name, help, typ string) {
	fmt.Fprintf(&m.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line; labels come as alternating key, value.
func (m *metricsWriter) sample(name string, value float64, labels ...string) {
	m.b.WriteString(name)
	if len(labels) > 0 {
		m.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				m.b.WriteByte(',')
			}
			fmt.Fprintf(&m.b, "%s=%q", labels[i], labels[i+1])
		}
		m.b.WriteByte('}')
	}
	// %g renders integral values without a decimal point and large
	// counters without loss until 2^53 — fine for scrape counters.
	fmt.Fprintf(&m.b, " %g\n", value)
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func (g *gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := &metricsWriter{}
	eng := g.engine()
	m.header("sbqa_ready", "1 once the engine is built and any persisted state is restored.", "gauge")
	m.sample("sbqa_ready", b2f(eng != nil))
	m.header("sbqa_build_info", "Build identity as labels; the value is always 1.", "gauge")
	m.sample("sbqa_build_info", 1, "version", buildVersion, "go_version", runtime.Version())
	writeRuntimeMetrics(m)
	if eng == nil {
		// Liveness-only document during the restore window: a scraper sees
		// the daemon up but not ready.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(m.b.String()))
		return
	}
	st := eng.Stats()

	m.header("sbqa_queries_submitted_total", "Query IDs assigned (including failed mediations).", "counter")
	m.sample("sbqa_queries_submitted_total", float64(st.QueriesSubmitted))
	m.header("sbqa_providers", "Providers currently registered in the directory.", "gauge")
	m.sample("sbqa_providers", float64(st.Providers))
	m.header("sbqa_consumers", "Consumers currently registered in the directory.", "gauge")
	m.sample("sbqa_consumers", float64(st.Consumers))
	m.header("sbqa_policy_generation", "Latest accepted policy generation.", "gauge")
	m.sample("sbqa_policy_generation", float64(st.PolicyGeneration))
	m.header("sbqa_events_dropped_total", "SSE events dropped for slow subscribers.", "counter")
	m.sample("sbqa_events_dropped_total", float64(g.hub.droppedEvents()))

	m.header("sbqa_shard_mediations_total", "Successful mediations per shard.", "counter")
	for i, sh := range st.Shards {
		m.sample("sbqa_shard_mediations_total", float64(sh.Mediations), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_shard_rejections_total", "Failed mediations per shard.", "counter")
	for i, sh := range st.Shards {
		m.sample("sbqa_shard_rejections_total", float64(sh.Rejections), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_shard_dispatch_failures_total", "Allocations not fully delivered per shard.", "counter")
	for i, sh := range st.Shards {
		m.sample("sbqa_shard_dispatch_failures_total", float64(sh.DispatchFailures), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_shard_imputations_total", "Intentions imputed for silent participants per shard.", "counter")
	for i, sh := range st.Shards {
		m.sample("sbqa_shard_imputations_total", float64(sh.Imputations), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_shard_intention_timeouts_total", "Imputations caused by missed participant deadlines per shard.", "counter")
	for i, sh := range st.Shards {
		m.sample("sbqa_shard_intention_timeouts_total", float64(sh.IntentionTimeouts), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_shard_policy_swaps_total", "Policy generations adopted per shard.", "counter")
	for i, sh := range st.Shards {
		m.sample("sbqa_shard_policy_swaps_total", float64(sh.PolicySwaps), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_shard_queue_depth", "Asynchronous submission queue backlog per shard.", "gauge")
	for i, sh := range st.Shards {
		m.sample("sbqa_shard_queue_depth", float64(sh.QueueDepth), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_shard_queue_high_water", "Deepest submission queue backlog observed per shard.", "gauge")
	for i, sh := range st.Shards {
		m.sample("sbqa_shard_queue_high_water", float64(sh.QueueHighWater), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_queue_enqueued_total", "Queries accepted into the submission queue per shard.", "counter")
	for i, sh := range st.Shards {
		m.sample("sbqa_queue_enqueued_total", float64(sh.QueueEnqueued), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_queue_dequeued_total", "Queries handed to mediation from the submission queue per shard.", "counter")
	for i, sh := range st.Shards {
		m.sample("sbqa_queue_dequeued_total", float64(sh.QueueDequeued), "shard", strconv.Itoa(i))
	}
	m.header("sbqa_shard_mean_candidates", "Mean candidate-set size per successful mediation.", "gauge")
	for i, sh := range st.Shards {
		m.sample("sbqa_shard_mean_candidates", sh.MeanCandidates, "shard", strconv.Itoa(i))
	}

	g.writeQoSMetrics(m, eng)

	m.header("sbqa_worker_queue_depth", "Tasks queued per registered worker.", "gauge")
	workerIDs := make([]int, 0, len(st.WorkerQueueDepths))
	for id := range st.WorkerQueueDepths {
		workerIDs = append(workerIDs, int(id))
	}
	sort.Ints(workerIDs)
	for _, id := range workerIDs {
		m.sample("sbqa_worker_queue_depth", float64(st.WorkerQueueDepths[sbqa.ProviderID(id)]), "worker", strconv.Itoa(id))
	}

	if ps := st.Persistence; ps != nil {
		m.header("sbqa_persist_records_appended_total", "Journal records appended.", "counter")
		m.sample("sbqa_persist_records_appended_total", float64(ps.RecordsAppended))
		m.header("sbqa_persist_records_dropped_total", "Events dropped by the full recorder queue.", "counter")
		m.sample("sbqa_persist_records_dropped_total", float64(ps.RecordsDropped))
		m.header("sbqa_persist_append_errors_total", "Journal records lost to write errors.", "counter")
		m.sample("sbqa_persist_append_errors_total", float64(ps.AppendErrors))
		m.header("sbqa_persist_syncs_total", "Journal fsyncs.", "counter")
		m.sample("sbqa_persist_syncs_total", float64(ps.Syncs))
		m.header("sbqa_persist_snapshots_written_total", "Snapshots written (compactions and the Close flush).", "counter")
		m.sample("sbqa_persist_snapshots_written_total", float64(ps.SnapshotsWritten))
		m.header("sbqa_persist_compactions_total", "Background compactions.", "counter")
		m.sample("sbqa_persist_compactions_total", float64(ps.Compactions))
		m.header("sbqa_persist_sealed_segments", "Sealed journal segments awaiting compaction.", "gauge")
		m.sample("sbqa_persist_sealed_segments", float64(ps.SealedSegments))
		m.header("sbqa_persist_queue_depth", "Recorder queue backlog.", "gauge")
		m.sample("sbqa_persist_queue_depth", float64(ps.QueueDepth))
		m.header("sbqa_persist_restore_replayed_records", "Journal records replayed by the boot restore.", "gauge")
		m.sample("sbqa_persist_restore_replayed_records", float64(ps.Restore.ReplayedRecords))
		m.header("sbqa_persist_restore_snapshot_loaded", "1 when the boot restore loaded a snapshot.", "gauge")
		m.sample("sbqa_persist_restore_snapshot_loaded", b2f(ps.Restore.SnapshotLoaded))
		m.header("sbqa_persist_restore_torn_tail", "1 when the boot restore found a torn final journal record.", "gauge")
		m.sample("sbqa_persist_restore_torn_tail", b2f(ps.Restore.TornTail))
	}

	if tr := eng.Tracer(); tr != nil {
		writeTraceMetrics(m, tr)
	}

	if g.node != nil {
		g.writeClusterMetrics(m)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(m.b.String()))
}

// writeRuntimeMetrics appends the Go runtime health gauges — present even
// during the restore window, since runtime pressure is exactly what an
// operator wants to see while a large journal replays.
func writeRuntimeMetrics(m *metricsWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.header("sbqa_go_goroutines", "Goroutines currently running.", "gauge")
	m.sample("sbqa_go_goroutines", float64(runtime.NumGoroutine()))
	m.header("sbqa_go_heap_inuse_bytes", "Heap bytes in in-use spans.", "gauge")
	m.sample("sbqa_go_heap_inuse_bytes", float64(ms.HeapInuse))
	m.header("sbqa_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", "counter")
	m.sample("sbqa_go_gc_pause_seconds_total", float64(ms.PauseTotalNs)/1e9)
}

// writeTraceMetrics appends the tracing families: per-stage latency
// histograms fed from the very span endpoints the flight recorder retains
// (metrics and traces share one clock and cannot disagree), plus the
// recorder's own counters.
func writeTraceMetrics(m *metricsWriter, tr *sbqa.TraceRecorder) {
	buckets := sbqa.TraceStageBuckets()
	m.header("sbqa_stage_seconds", "Mediation pipeline stage latency, by stage, from sampled traces.", "histogram")
	for _, s := range tr.StageSnapshots() {
		for i, le := range buckets {
			m.sample("sbqa_stage_seconds_bucket", float64(s.Buckets[i]),
				"stage", s.Stage, "le", strconv.FormatFloat(le, 'g', -1, 64))
		}
		m.sample("sbqa_stage_seconds_bucket", float64(s.Count), "stage", s.Stage, "le", "+Inf")
		m.sample("sbqa_stage_seconds_sum", s.Sum, "stage", s.Stage)
		m.sample("sbqa_stage_seconds_count", float64(s.Count), "stage", s.Stage)
	}

	st := tr.StatsSnapshot()
	m.header("sbqa_traces_started_total", "Traces started (sampled locally or adopted from a forward).", "counter")
	m.sample("sbqa_traces_started_total", float64(st.Started))
	m.header("sbqa_traces_finished_total", "Traces finished and published to the flight recorder.", "counter")
	m.sample("sbqa_traces_finished_total", float64(st.Finished))
	m.header("sbqa_traces_active", "Traces currently in flight.", "gauge")
	m.sample("sbqa_traces_active", float64(st.Active))
	m.header("sbqa_trace_spans_dropped_total", "Spans dropped past a trace's span cap.", "counter")
	m.sample("sbqa_trace_spans_dropped_total", float64(st.SpansDropped))
	m.header("sbqa_traces_evicted_total", "Finished traces evicted from the full flight-recorder ring.", "counter")
	m.sample("sbqa_traces_evicted_total", float64(st.Evicted))
}

// writeQoSMetrics appends the overload-survival families: sheds by class
// and reason (summed across shards — the class is the operational unit, the
// shard an implementation detail), gateway admission rejections, and the
// current brownout level.
func (g *gateway) writeQoSMetrics(m *metricsWriter, eng *sbqa.Engine) {
	type key struct{ class, reason string }
	shed := make(map[key]uint64)
	for _, qs := range eng.QoSStats() {
		for _, cs := range qs.Classes {
			for reason, n := range cs.Shed {
				shed[key{cs.Name, reason}] += n
			}
		}
	}
	keys := make([]key, 0, len(shed))
	for k := range shed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return keys[i].reason < keys[j].reason
	})
	m.header("sbqa_shed_total", "Queries shed by admission control, by class and reason.", "counter")
	for _, k := range keys {
		m.sample("sbqa_shed_total", float64(shed[k]), "class", k.class, "reason", k.reason)
	}
	m.header("sbqa_admission_rejected_total", "Submissions refused by the gateway token buckets (HTTP 429).", "counter")
	m.sample("sbqa_admission_rejected_total", float64(g.admissionRejected.Load()))
	m.header("sbqa_brownout_level", "Current brownout shed-widening level (0 = none).", "gauge")
	m.sample("sbqa_brownout_level", float64(eng.Brownout()))
}

// writeClusterMetrics appends the sbqa_cluster_* families: peer health as
// a one-hot state gauge, the gateway's forwarding counters and latency,
// and per-follower replication lag.
func (g *gateway) writeClusterMetrics(m *metricsWriter) {
	st := g.node.Status()

	m.header("sbqa_cluster_nodes", "Nodes in the configured (full) ring.", "gauge")
	m.sample("sbqa_cluster_nodes", float64(len(st.Nodes)))
	m.header("sbqa_cluster_live_nodes", "Nodes in the live routing ring (Down peers excluded).", "gauge")
	m.sample("sbqa_cluster_live_nodes", float64(len(st.Live)))

	m.header("sbqa_cluster_peer_health", "Peer health as seen by this node: 1 for the current state, 0 otherwise.", "gauge")
	for _, p := range st.Peers {
		for _, state := range []string{"alive", "suspect", "down"} {
			m.sample("sbqa_cluster_peer_health", b2f(p.Health == state), "peer", p.ID, "state", state)
		}
	}

	m.header("sbqa_cluster_forwarded_total", "Requests forwarded to their owning node.", "counter")
	m.sample("sbqa_cluster_forwarded_total", float64(g.cmx.fwdQueries.Load()), "kind", "query")
	m.sample("sbqa_cluster_forwarded_total", float64(g.cmx.fwdConsumers.Load()), "kind", "consumer")
	m.header("sbqa_cluster_forward_errors_total", "Forwards that failed in transport.", "counter")
	m.sample("sbqa_cluster_forward_errors_total", float64(g.cmx.fwdErrors.Load()))
	m.header("sbqa_cluster_forward_seconds_sum", "Total round-trip time of completed forwards.", "counter")
	m.sample("sbqa_cluster_forward_seconds_sum", float64(g.cmx.fwdLatencyMicro.Load())/1e6)
	m.header("sbqa_cluster_forward_seconds_count", "Completed forwards with a latency observation.", "counter")
	m.sample("sbqa_cluster_forward_seconds_count", float64(g.cmx.fwdCompleted.Load()))
	m.header("sbqa_cluster_not_owner_total", "Forwarded hops refused because this node does not own the consumer.", "counter")
	m.sample("sbqa_cluster_not_owner_total", float64(g.cmx.notOwner.Load()))
	m.header("sbqa_cluster_peer_down_total", "Requests refused because the owning peer is down.", "counter")
	m.sample("sbqa_cluster_peer_down_total", float64(g.cmx.peerDown.Load()))

	m.header("sbqa_cluster_replication_lag_segments", "Sealed WAL segments not yet shipped to a follower.", "gauge")
	m.header("sbqa_cluster_replication_lag_bytes", "Bytes of WAL (sealed backlog plus active tail) a follower is behind.", "gauge")
	m.header("sbqa_cluster_shipped_segments_total", "WAL segments shipped to a follower.", "counter")
	for _, p := range st.Peers {
		if !p.Follower {
			continue
		}
		m.sample("sbqa_cluster_replication_lag_segments", float64(p.LagSegments), "peer", p.ID)
		m.sample("sbqa_cluster_replication_lag_bytes", float64(p.LagBytes), "peer", p.ID)
		m.sample("sbqa_cluster_shipped_segments_total", float64(p.Shipped), "peer", p.ID)
	}
}
