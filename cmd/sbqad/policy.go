package main

// The gateway's policy control plane:
//
//	GET  /v1/policy          the running policy spec + generation adoption
//	PUT  /v1/policy          hot-reconfigure the engine to a new spec
//	POST /v1/policy/preview  dry-run a candidate spec against a submitted
//	                         candidate set — no engine state is touched
//
// plus the policy_change SSE event (hub.go).

import (
	"context"
	"fmt"
	"net/http"

	"sbqa"
)

// policyResponse is the GET /v1/policy payload.
type policyResponse struct {
	// Policy is the engine's target spec; null when the engine was built
	// from raw allocators and never reconfigured.
	Policy *sbqa.PolicySpec `json:"policy"`
	// Generation is the latest accepted policy generation.
	Generation uint64 `json:"generation"`
	// Shards reports, per shard, the generation actually running and how
	// many swaps the shard has applied at mediation boundaries.
	Shards []policyShardJSON `json:"shards"`
}

type policyShardJSON struct {
	PolicyGeneration uint64 `json:"policy_generation"`
	PolicySwaps      uint64 `json:"policy_swaps"`
}

func (g *gateway) handleGetPolicy(w http.ResponseWriter, _ *http.Request) {
	eng, ok := g.requireEngine(w)
	if !ok {
		return
	}
	resp := policyResponse{Generation: eng.PolicyGeneration()}
	if spec, ok := eng.Policy(); ok {
		resp.Policy = &spec
	}
	st := eng.Stats()
	resp.Shards = make([]policyShardJSON, len(st.Shards))
	for i, sh := range st.Shards {
		resp.Shards[i] = policyShardJSON{
			PolicyGeneration: sh.PolicyGeneration,
			PolicySwaps:      sh.PolicySwaps,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *gateway) handlePutPolicy(w http.ResponseWriter, r *http.Request) {
	eng, ok := g.requireEngine(w)
	if !ok {
		return
	}
	var spec sbqa.PolicySpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	// Detached context: an accepted reconfiguration must not be rolled back
	// by the HTTP client disconnecting mid-response. policyMu keeps the
	// Reconfigure and the generation read atomic with respect to other
	// PUTs, so each caller learns the generation *its* spec was assigned.
	g.policyMu.Lock()
	err := eng.Reconfigure(context.WithoutCancel(r.Context()), spec)
	gen := eng.PolicyGeneration()
	g.policyMu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The engine reconfigured its schedulers from the spec's qos block (or
	// restored its construction-time QoS when the spec carries none);
	// mirror the resulting spec into the gateway's admission limiter so
	// token buckets and class queues always enforce the same generation.
	if qs := eng.QoSSpec(); hasAdmissionRates(qs) {
		g.applyQoS(&qs)
	} else {
		g.applyQoS(nil)
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"generation": gen})
}

// previewRequest dry-runs one candidate policy: the submitted candidate set
// is mediated by a freshly built allocator over a table-backed environment,
// and the resulting ranking is returned. Nothing touches the running
// engine, its satisfaction registry, or its directory — preview is a pure
// function of the request.
type previewRequest struct {
	Policy sbqa.PolicySpec `json:"policy"`
	Query  struct {
		Consumer int     `json:"consumer"`
		Class    int     `json:"class"`
		N        int     `json:"n"`
		Work     float64 `json:"work"`
	} `json:"query"`
	// ConsumerSatisfaction is the consumer's assumed long-run δs; nil
	// means neutral 0.5.
	ConsumerSatisfaction *float64           `json:"consumer_satisfaction"`
	Candidates           []previewCandidate `json:"candidates"`
}

// previewCandidate is one provider in the dry-run candidate set: its
// mediator-visible snapshot plus the intentions and satisfaction the
// caller wants assumed (absent values default to 0 intentions, neutral 0.5
// satisfaction, expected-delay bids — StaticEnv's fallbacks).
type previewCandidate struct {
	ID           int      `json:"id"`
	Utilization  float64  `json:"utilization"`
	QueueLen     int      `json:"queue_len"`
	Capacity     float64  `json:"capacity"`
	PendingWork  float64  `json:"pending_work"`
	CI           *float64 `json:"ci"`
	PI           *float64 `json:"pi"`
	Satisfaction *float64 `json:"satisfaction"`
	Bid          *float64 `json:"bid"`
}

type previewResponse struct {
	// Name is the built allocator's display name (policy kind + tuning).
	Name string `json:"name"`
	// Selected and Proposed mirror a live allocation: the providers the
	// candidate policy would pick, best-ranked first, and the full
	// proposal set it would contact.
	Selected []sbqa.ProviderID `json:"selected"`
	Proposed []sbqa.ProviderID `json:"proposed,omitempty"`
	// Scores aligns with Proposed (allocators that rank); the consumer
	// and provider intentions likewise, when the policy collects them.
	Scores             []float64        `json:"scores,omitempty"`
	ConsumerIntentions []sbqa.Intention `json:"consumer_intentions,omitempty"`
	ProviderIntentions []sbqa.Intention `json:"provider_intentions,omitempty"`
	// Unallocatable is true when the policy refuses the whole set (for
	// example, share-based with every share exhausted).
	Unallocatable bool `json:"unallocatable,omitempty"`
}

func (g *gateway) handlePolicyPreview(w http.ResponseWriter, r *http.Request) {
	var req previewRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Candidates) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("preview requires at least one candidate"))
		return
	}
	allocator, err := req.Policy.Build(0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	consumer := sbqa.ConsumerID(req.Query.Consumer)
	env := sbqa.NewStaticEnv()
	if req.ConsumerSatisfaction != nil {
		env.SatC[consumer] = *req.ConsumerSatisfaction
	}
	snaps := make([]sbqa.ProviderSnapshot, 0, len(req.Candidates))
	for _, c := range req.Candidates {
		pid := sbqa.ProviderID(c.ID)
		snaps = append(snaps, sbqa.ProviderSnapshot{
			ID:          pid,
			Utilization: c.Utilization,
			QueueLen:    c.QueueLen,
			Capacity:    c.Capacity,
			PendingWork: c.PendingWork,
		})
		if c.CI != nil {
			env.SetCI(consumer, pid, sbqa.Intention(*c.CI).Clamp())
		}
		if c.PI != nil {
			env.SetPI(pid, consumer, sbqa.Intention(*c.PI).Clamp())
		}
		if c.Satisfaction != nil {
			env.SatP[pid] = *c.Satisfaction
		}
		if c.Bid != nil {
			env.BidTable[pid] = *c.Bid
		}
	}
	n := req.Query.N
	if n < 1 {
		n = 1
	}
	q := sbqa.Query{Consumer: consumer, Class: req.Query.Class, N: n, Work: req.Query.Work}
	if q.Work <= 0 {
		q.Work = 1
	}

	a, err := allocator.Allocate(r.Context(), env, q, snaps)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("preview mediation failed: %w", err))
		return
	}
	resp := previewResponse{Name: allocator.Name()}
	if a == nil || len(a.Selected) == 0 {
		resp.Unallocatable = true
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Selected = a.Selected
	resp.Proposed = a.Proposed
	resp.Scores = a.Scores
	resp.ConsumerIntentions = a.ConsumerIntentions
	resp.ProviderIntentions = a.ProviderIntentions
	writeJSON(w, http.StatusOK, resp)
}
