package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sbqa"
)

// testClusterNode is one in-process cluster member: a gateway plus its
// HTTP server, wired to its peers over loopback.
type testClusterNode struct {
	id  string
	g   *gateway
	srv *httptest.Server
	dir string // state dir; "" when the cluster runs without persistence
}

// startTestCluster boots n gateways into one cluster with fast
// heartbeat/replication cadences. With withState each node persists to
// its own temp dir with per-outcome fsync, so every mediation outcome is
// in the journal before the response returns.
func startTestCluster(t testing.TB, n int, withState bool, opts ...sbqa.EngineOption) []*testClusterNode {
	t.Helper()
	nodes := make([]*testClusterNode, n)
	for i := range nodes {
		nodes[i] = &testClusterNode{id: fmt.Sprintf("n%d", i), g: newGatewayShell()}
		// The server can start before init: the handler resolves the
		// engine and cluster node per request, exactly like the daemon's
		// bind-before-restore boot.
		nodes[i].srv = httptest.NewServer(nodes[i].g.handler())
		t.Cleanup(nodes[i].srv.Close)
	}
	for i, cn := range nodes {
		var peers []sbqa.ClusterPeer
		for j, other := range nodes {
			if j != i {
				peers = append(peers, sbqa.ClusterPeer{ID: other.id, Addr: other.srv.URL})
			}
		}
		cs := &clusterSettings{
			nodeID:            cn.id,
			peers:             peers,
			heartbeatInterval: 20 * time.Millisecond,
			heartbeatTimeout:  250 * time.Millisecond,
			replicateInterval: 20 * time.Millisecond,
		}
		o := append([]sbqa.EngineOption{}, opts...)
		if withState {
			cn.dir = t.TempDir()
			cs.stateDir = cn.dir
			o = append(o, sbqa.WithPersistence(cn.dir, sbqa.PersistSyncEvery(1)))
		}
		if err := cn.g.initWithCluster(cs, o...); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cn.g.close)
	}
	return nodes
}

// deterministicOpts pins the engine to one shard and a fixed-seed SbQA
// allocator so two engines fed identical traffic allocate identically.
func deterministicOpts() []sbqa.EngineOption {
	return []sbqa.EngineOption{
		sbqa.WithWindow(50),
		sbqa.WithConcurrency(1),
		sbqa.WithAllocatorFactory(func(shard int) sbqa.Allocator {
			return sbqa.NewSbQA(sbqa.SbQAConfig{
				KnBest: sbqa.KnBestParams{K: 4, Kn: 1},
				Seed:   7,
			})
		}),
	}
}

// registerWorkers installs the same three constant-intention workers.
func registerWorkers(t testing.TB, baseURL string) {
	t.Helper()
	for id := 1; id <= 3; id++ {
		resp := postJSON(t, baseURL+"/v1/workers", workerRequest{
			ID: id, Capacity: 100, Intention: 0.2 * float64(id),
		}, nil)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register worker %d: %d", id, resp.StatusCode)
		}
	}
}

// ownerIndex resolves which cluster node owns consumer c right now.
func ownerIndex(t testing.TB, nodes []*testClusterNode, c int) int {
	t.Helper()
	owner, self, _ := nodes[0].g.node.Route(sbqa.ConsumerID(c))
	if self {
		return 0
	}
	for i, cn := range nodes {
		if cn.id == owner.ID {
			return i
		}
	}
	t.Fatalf("consumer %d owned by unknown node %q", c, owner.ID)
	return -1
}

// consumerOwnedBy finds a consumer ID the given node owns, searching up
// from `from` (so distinct calls can yield distinct consumers).
func consumerOwnedBy(t testing.TB, nodes []*testClusterNode, idx, from int) int {
	t.Helper()
	for c := from; c < from+10_000; c++ {
		if ownerIndex(t, nodes, c) == idx {
			return c
		}
	}
	t.Fatalf("no consumer owned by %s in [%d,%d)", nodes[idx].id, from, from+10_000)
	return -1
}

// waitCondition polls until cond or the deadline.
func waitCondition(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// submitAlloc submits one query through baseURL waiting for the
// allocation and returns the response.
func submitAlloc(t testing.TB, baseURL string, consumer int) queryResponse {
	return submitWait(t, baseURL, consumer, "allocation")
}

func submitWait(t testing.TB, baseURL string, consumer int, wait string) queryResponse {
	t.Helper()
	var qr queryResponse
	resp := postJSON(t, baseURL+"/v1/queries", queryRequest{
		Consumer: consumer, N: 1, Work: 0.1, Wait: wait,
	}, &qr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit consumer %d: status %d (%+v)", consumer, resp.StatusCode, qr)
	}
	return qr
}

// TestClusterForwardedSubmitMatchesSingleNode drives identical traffic
// into (a) a two-node cluster through the NON-owner gateway and (b) a
// plain single-node gateway with the same deterministic policy, and
// asserts the allocation sequences match: consistent-hash forwarding is
// transparent to the allocation process.
func TestClusterForwardedSubmitMatchesSingleNode(t *testing.T) {
	nodes := startTestCluster(t, 2, false, deterministicOpts()...)
	single, err := newGateway(deterministicOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer single.close()
	singleSrv := httptest.NewServer(single.handler())
	defer singleSrv.Close()

	for _, cn := range nodes {
		registerWorkers(t, cn.srv.URL)
	}
	registerWorkers(t, singleSrv.URL)

	c := consumerOwnedBy(t, nodes, 0, 100)
	entry := nodes[1] // never the owner: every request must forward
	for _, url := range []string{entry.srv.URL, singleSrv.URL} {
		resp := postJSON(t, url+"/v1/consumers", consumerRequest{ID: c, Intention: 0.9}, nil)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register consumer at %s: %d", url, resp.StatusCode)
		}
	}
	// Registration forwarded to the owner: it must exist there, not here.
	waitCondition(t, 5*time.Second, "consumer registered on owner", func() bool {
		return nodes[0].g.eng.Stats().Consumers == 1
	})
	if got := entry.g.eng.Stats().Consumers; got != 0 {
		t.Fatalf("non-owner registered the consumer locally (consumers=%d)", got)
	}

	// wait:"results" serializes fully: each query executes to completion
	// before the next mediates, so worker utilization — which feeds the
	// allocator's view of providers — is identical at every step in both
	// deployments.
	for i := 0; i < 8; i++ {
		clu := submitWait(t, entry.srv.URL, c, "results")
		ref := submitWait(t, singleSrv.URL, c, "results")
		if fmt.Sprint(clu.Selected) != fmt.Sprint(ref.Selected) {
			t.Fatalf("submission %d: cluster selected %v, single node %v", i, clu.Selected, ref.Selected)
		}
	}
	// The queries mediated on the owner; the entry node only forwarded.
	if m := nodes[0].g.eng.Stats().QueriesSubmitted; m != 8 {
		t.Fatalf("owner mediated %d queries, want 8", m)
	}
	if m := entry.g.eng.Stats().QueriesSubmitted; m != 0 {
		t.Fatalf("non-owner mediated %d queries, want 0", m)
	}
	if fq := entry.g.cmx.fwdQueries.Load(); fq != 8 {
		t.Fatalf("forwarded-query counter = %d, want 8", fq)
	}
	if fc := entry.g.cmx.fwdConsumers.Load(); fc != 1 {
		t.Fatalf("forwarded-consumer counter = %d, want 1", fc)
	}
}

// TestClusterForwardedHopAnswersNotOwner: a request carrying the
// forwarded-hop header that lands on a non-owner must answer a typed 503
// not_owner instead of forwarding again (loop prevention).
func TestClusterForwardedHopAnswersNotOwner(t *testing.T) {
	nodes := startTestCluster(t, 2, false, deterministicOpts()...)
	c := consumerOwnedBy(t, nodes, 0, 0)
	entry := nodes[1]

	body, _ := json.Marshal(queryRequest{Consumer: c, N: 1, Wait: "allocation"})
	req, err := http.NewRequest(http.MethodPost, entry.srv.URL+"/v1/queries", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(sbqa.ClusterForwardedFromHeader, "n0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var out struct {
		Error string `json:"error"`
		Code  string `json:"code"`
		Owner string `json:"owner"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Code != "not_owner" || out.Owner != "n0" || out.Error == "" {
		t.Fatalf("typed error = %+v, want code not_owner owner n0", out)
	}
}

// TestClusterForwardAnswersPeerDown: when the owner is unreachable the
// non-owner must answer a typed 503 peer_down promptly, not hang.
func TestClusterForwardAnswersPeerDown(t *testing.T) {
	// A fake peer that is healthy at boot, then vanishes. The huge
	// heartbeat interval freezes membership after the first probe round,
	// so the peer stays Alive on the ring while its socket is dead —
	// exactly the window between a crash and its detection.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	g := newGatewayShell()
	srv := httptest.NewServer(g.handler())
	defer srv.Close()
	cs := &clusterSettings{
		nodeID:            "a",
		peers:             []sbqa.ClusterPeer{{ID: "b", Addr: fake.URL}},
		heartbeatInterval: time.Hour,
		heartbeatTimeout:  time.Second,
	}
	if err := g.initWithCluster(cs, deterministicOpts()...); err != nil {
		t.Fatal(err)
	}
	defer g.close()
	fake.Close() // crash the owner

	c := 0
	for ; ; c++ {
		if _, self, _ := g.node.Route(sbqa.ConsumerID(c)); !self {
			break
		}
	}
	var out struct {
		Code string `json:"code"`
	}
	start := time.Now()
	resp := postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: c, N: 1, Wait: "allocation"}, &out)
	if resp.StatusCode != http.StatusServiceUnavailable || out.Code != "peer_down" {
		t.Fatalf("status %d code %q, want 503 peer_down", resp.StatusCode, out.Code)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("peer_down answer took %v, want prompt failure", d)
	}
}

// TestClusterForwardPropagatesClientDeadline: a forwarded request must
// carry the client's deadline to the outbound call — a hung owner ends
// the forward when the client's context expires, long before
// forwardTimeout.
func TestClusterForwardPropagatesClientDeadline(t *testing.T) {
	release := make(chan struct{})
	// A stub owner that accepts the forward and then sits on it until
	// the request context dies.
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == sbqa.ClusterHealthzPath {
			w.WriteHeader(http.StatusOK)
			return
		}
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer stub.Close()
	defer close(release) // LIFO: unblock the handler before stub.Close waits on it

	g := newGatewayShell()
	cs := &clusterSettings{
		nodeID:            "a",
		peers:             []sbqa.ClusterPeer{{ID: "b", Addr: stub.URL}},
		heartbeatInterval: time.Hour,
		heartbeatTimeout:  time.Second,
	}
	if err := g.initWithCluster(cs, deterministicOpts()...); err != nil {
		t.Fatal(err)
	}
	defer g.close()

	c := 0
	for ; ; c++ {
		if _, self, _ := g.node.Route(sbqa.ConsumerID(c)); !self {
			break
		}
	}
	body, _ := json.Marshal(queryRequest{Consumer: c, N: 1, Wait: "allocation"})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/queries", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	start := time.Now()
	g.handleSubmit(rec, req)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("forward held the handler %v past the client deadline", elapsed)
	}
	var out struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusServiceUnavailable || out.Code != "peer_down" {
		t.Fatalf("status %d code %q, want 503 peer_down", rec.Code, out.Code)
	}
}

// TestClusterStatusAndMetrics exercises the /v1/cluster surface and the
// sbqa_cluster_* metric families after real forwarded traffic.
func TestClusterStatusAndMetrics(t *testing.T) {
	nodes := startTestCluster(t, 2, false, deterministicOpts()...)
	for _, cn := range nodes {
		registerWorkers(t, cn.srv.URL)
	}
	c := consumerOwnedBy(t, nodes, 0, 0)
	entry := nodes[1]
	postJSON(t, entry.srv.URL+"/v1/consumers", consumerRequest{ID: c, Intention: 0.8}, nil)
	submitAlloc(t, entry.srv.URL, c)

	var st sbqa.ClusterStatus
	resp, err := http.Get(entry.srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Self.ID != "n1" || len(st.Nodes) != 2 || len(st.Peers) != 1 {
		t.Fatalf("cluster status = %+v", st)
	}
	waitCondition(t, 5*time.Second, "peer alive in status", func() bool {
		r, err := http.Get(entry.srv.URL + "/v1/cluster")
		if err != nil {
			return false
		}
		defer r.Body.Close()
		var s sbqa.ClusterStatus
		if json.NewDecoder(r.Body).Decode(&s) != nil {
			return false
		}
		return len(s.Peers) == 1 && s.Peers[0].Health == "alive"
	})

	mresp, err := http.Get(entry.srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`sbqa_cluster_nodes 2`,
		`sbqa_cluster_live_nodes 2`,
		`sbqa_cluster_peer_health{peer="n0",state="alive"} 1`,
		`sbqa_cluster_forwarded_total{kind="query"} 1`,
		`sbqa_cluster_forwarded_total{kind="consumer"} 1`,
		`sbqa_cluster_forward_seconds_count 2`,
		`sbqa_cluster_not_owner_total 0`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestGatewayWithoutClusterUnchanged: a gateway built without cluster
// settings has no node, no guard, no /v1/cluster, and no sbqa_cluster_*
// metric families — the single-node daemon is byte-identical to before.
func TestGatewayWithoutClusterUnchanged(t *testing.T) {
	gw, err := newGateway(deterministicOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	if gw.node != nil {
		t.Fatal("single-node gateway constructed a cluster node")
	}
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/cluster without cluster mode = %d, want 404", resp.StatusCode)
	}
	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	if strings.Contains(string(text), "sbqa_cluster_") {
		t.Fatal("single-node metrics expose cluster families")
	}
}

// TestClusterEndToEndFailover is the acceptance test: a three-node
// cluster with durable state serves forwarded traffic, ships WAL
// segments to ring followers (byte-identical to the owner's journal),
// and on an owner's death the follower serves the rebalanced consumers
// with their satisfaction memory intact — only the unsynced tail could
// be lost, and with a drained replication lag that tail is empty.
func TestClusterEndToEndFailover(t *testing.T) {
	nodes := startTestCluster(t, 3, true, deterministicOpts()...)
	for _, cn := range nodes {
		registerWorkers(t, cn.srv.URL)
	}

	// One consumer owned by each node, all registered and driven through
	// node 2 — registration and submission forward transparently.
	consumers := make([]int, 3)
	for i := range nodes {
		consumers[i] = consumerOwnedBy(t, nodes, i, 1000*i)
		resp := postJSON(t, nodes[2].srv.URL+"/v1/consumers",
			consumerRequest{ID: consumers[i], Intention: 0.7}, nil)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register consumer %d: %d", consumers[i], resp.StatusCode)
		}
	}
	for round := 0; round < 5; round++ {
		for i, c := range consumers {
			qr := submitAlloc(t, nodes[(i+round)%3].srv.URL, c)
			if len(qr.Selected) == 0 {
				t.Fatalf("consumer %d round %d: no allocation (%+v)", c, round, qr)
			}
		}
	}

	victim := 0
	victimConsumer := consumers[0]
	// The victim's satisfaction memory for its consumer, as ground truth.
	wantSat := nodes[victim].g.eng.Registry().ConsumerSatisfaction(sbqa.ConsumerID(victimConsumer))

	// Quiesce: wait until every follower of the victim reports zero lag —
	// all sealed segments shipped and the active tail rotated out.
	waitCondition(t, 15*time.Second, "replication lag drained", func() bool {
		st := nodes[victim].g.node.Status()
		saw := false
		for _, p := range st.Peers {
			if !p.Follower {
				continue
			}
			saw = true
			if p.LagSegments != 0 || p.LagBytes != 0 || p.Shipped == 0 {
				return false
			}
		}
		return saw
	})

	// Byte-level check: every sealed segment in the victim's state dir
	// must exist, bit-identical, in each follower's replica dir.
	segs, err := filepath.Glob(filepath.Join(nodes[victim].dir, "wal-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("victim sealed segments: %v (err %v)", segs, err)
	}
	active := "" // the newest segment is the active tail, not yet shipped
	for _, s := range segs {
		if active == "" || s > active {
			active = s
		}
	}
	followers := 0
	for i, cn := range nodes {
		if i == victim {
			continue
		}
		replicaDir := filepath.Join(cn.dir, "replica", nodes[victim].id)
		if _, err := os.Stat(replicaDir); err != nil {
			continue // not a ring follower of the victim
		}
		followers++
		for _, seg := range segs {
			if seg == active {
				continue
			}
			want, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(replicaDir, filepath.Base(seg)))
			if err != nil {
				t.Fatalf("follower %s missing shipped segment %s: %v", cn.id, filepath.Base(seg), err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("follower %s: segment %s differs from origin", cn.id, filepath.Base(seg))
			}
		}
	}
	if followers == 0 {
		t.Fatal("victim has no followers holding replicas")
	}

	// Kill the victim (its HTTP server vanishes mid-cluster, like a
	// crashed process) and wait for a survivor to mark it down.
	nodes[victim].srv.Close()
	waitCondition(t, 15*time.Second, "survivors mark victim down", func() bool {
		for i, cn := range nodes {
			if i == victim {
				continue
			}
			for _, n := range cn.g.node.Status().Live {
				if n == nodes[victim].id {
					return false
				}
			}
		}
		return true
	})

	// The victim's consumer now routes to a survivor, with its memory
	// restored from the replicated WAL.
	newOwner := ownerIndex(t, nodes[1:], victimConsumer) + 1
	got := nodes[newOwner].g.eng.Registry().ConsumerSatisfaction(sbqa.ConsumerID(victimConsumer))
	if got != wantSat {
		t.Fatalf("restored satisfaction = %v, want %v (victim's value)", got, wantSat)
	}

	// And the survivor serves it: re-register (participants are runtime
	// objects) through the OTHER survivor so the hop still forwards.
	other := 1
	if other == newOwner {
		other = 2
	}
	resp := postJSON(t, nodes[other].srv.URL+"/v1/consumers",
		consumerRequest{ID: victimConsumer, Intention: 0.7}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-register after failover: %d", resp.StatusCode)
	}
	qr := submitAlloc(t, nodes[other].srv.URL, victimConsumer)
	if len(qr.Selected) == 0 {
		t.Fatalf("post-failover allocation empty: %+v", qr)
	}
}

// TestClusterEventsRoutedSubscription: an SSE subscription with
// ?consumer=N made at a non-owner is proxied to the owner, so the
// subscriber sees the owner's events for that consumer.
func TestClusterEventsRoutedSubscription(t *testing.T) {
	nodes := startTestCluster(t, 2, false, deterministicOpts()...)
	for _, cn := range nodes {
		registerWorkers(t, cn.srv.URL)
	}
	c := consumerOwnedBy(t, nodes, 0, 0)
	entry := nodes[1]
	postJSON(t, entry.srv.URL+"/v1/consumers", consumerRequest{ID: c, Intention: 0.8}, nil)

	events, closeSSE := openSSE(t, entry.srv.URL+"/v1/events?consumer="+fmt.Sprint(c))
	defer closeSSE()
	submitAlloc(t, entry.srv.URL, c)
	awaitEvent(t, events, "allocation", func(data string) bool {
		return strings.Contains(data, fmt.Sprintf(`"consumer":%d`, c))
	})
}
