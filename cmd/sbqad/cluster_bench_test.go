package main

import (
	"testing"

	"sbqa"
)

// BenchmarkForwardedSubmit measures one query's full forwarded hop over
// loopback: POST /v1/queries at the non-owner gateway, consistent-hash
// route, proxied HTTP call to the owner, mediation there, and the
// relayed allocation response. The delta against a direct submission is
// the cluster's routing tax. ns/op is dominated by two real HTTP
// round-trips, so the committed baseline gates it only through the
// normalized relative gate, not the exact allocs/op gate.
func BenchmarkForwardedSubmit(b *testing.B) {
	nodes := startTestCluster(b, 2, false,
		sbqa.WithWindow(50),
		sbqa.WithConcurrency(1),
		sbqa.WithAllocatorFactory(func(shard int) sbqa.Allocator {
			return sbqa.NewSbQA(sbqa.SbQAConfig{
				KnBest: sbqa.KnBestParams{K: 4, Kn: 2},
				Seed:   1,
			})
		}),
	)
	for _, cn := range nodes {
		registerWorkers(b, cn.srv.URL)
	}
	c := consumerOwnedBy(b, nodes, 0, 0)
	entry := nodes[1]
	postJSON(b, entry.srv.URL+"/v1/consumers", consumerRequest{ID: c, Intention: 0.8}, nil)
	submitAlloc(b, entry.srv.URL, c) // warm connections and the owner's shard

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitAlloc(b, entry.srv.URL, c)
	}
	b.StopTimer()
	if fq := entry.g.cmx.fwdQueries.Load(); fq != uint64(b.N)+1 {
		b.Fatalf("forwarded %d queries, want %d", fq, b.N+1)
	}
}
