//go:build clustersmoke

package main

// Three-process cluster smoke test: real sbqad binaries on loopback, a
// query submitted through a non-owner, a SIGKILL of the owner, and a
// follower serving the dead node's consumer with its satisfaction
// memory restored from shipped WAL segments. Build-tagged because it
// compiles the binary and runs ~10s of wall clock:
//
//	go test -tags clustersmoke -run TestClusterSmokeThreeNode -v ./cmd/sbqad/

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"sbqa"
)

func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().(*net.TCPAddr).Port
		ln.Close()
	}
	return ports
}

func smokeGetJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func TestClusterSmokeThreeNode(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "sbqad")
	build := exec.Command("go", "build", "-o", bin, "sbqa/cmd/sbqad")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const n = 3
	ports := freePorts(t, n)
	ids := make([]string, n)
	urls := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i)
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", ports[i])
	}
	procs := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		peers := ""
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if peers != "" {
				peers += ","
			}
			peers += ids[j] + "=" + urls[j]
		}
		cmd := exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-node-id", ids[i],
			"-peers", peers,
			"-state-dir", t.TempDir(),
			"-state-sync-every", "1",
			"-shards", "1",
			"-heartbeat-interval", "50ms",
			"-replicate-interval", "50ms",
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = cmd
		i := i
		t.Cleanup(func() {
			procs[i].Process.Kill()
			procs[i].Wait()
		})
	}

	waitHTTP := func(what string, d time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s", what)
	}
	for i := range urls {
		url := urls[i]
		waitHTTP("readyz "+ids[i], 15*time.Second, func() bool {
			resp, err := http.Get(url + "/v1/readyz")
			if err != nil {
				return false
			}
			resp.Body.Close()
			return resp.StatusCode == http.StatusOK
		})
	}

	// Same worker fleet everywhere, then a consumer owned by n0 —
	// ownership is computable client-side from the deterministic ring.
	for _, url := range urls {
		for id := 1; id <= 2; id++ {
			postJSON(t, url+"/v1/workers", workerRequest{ID: id, Capacity: 100, Intention: 0.3 * float64(id)}, nil)
		}
	}
	ring := sbqa.NewClusterRing(ids, 0)
	c := 0
	for ; ring.Owner(sbqa.ConsumerID(c)) != "n0"; c++ {
	}
	postJSON(t, urls[1]+"/v1/consumers", consumerRequest{ID: c, Intention: 0.8}, nil)

	// Drive traffic through the NON-owner: every submission forwards.
	for i := 0; i < 10; i++ {
		var qr queryResponse
		resp := postJSON(t, urls[1]+"/v1/queries", queryRequest{Consumer: c, N: 1, Work: 0.1, Wait: "results"}, &qr)
		if resp.StatusCode != http.StatusOK || len(qr.Selected) == 0 {
			t.Fatalf("forwarded submit %d: status %d %+v", i, resp.StatusCode, qr)
		}
	}

	// The owner's satisfaction memory for c, and proof it replicated.
	var stats struct {
		Satisfaction struct {
			Consumers map[string]float64 `json:"consumers"`
		} `json:"satisfaction"`
	}
	if err := smokeGetJSON(urls[0]+"/v1/stats", &stats); err != nil {
		t.Fatal(err)
	}
	wantSat, ok := stats.Satisfaction.Consumers[fmt.Sprint(c)]
	if !ok {
		t.Fatalf("owner has no satisfaction for consumer %d", c)
	}
	waitHTTP("replication drained", 20*time.Second, func() bool {
		var st sbqa.ClusterStatus
		if err := smokeGetJSON(urls[0]+"/v1/cluster", &st); err != nil {
			return false
		}
		saw := false
		for _, p := range st.Peers {
			if !p.Follower {
				continue
			}
			saw = true
			if p.LagSegments != 0 || p.LagBytes != 0 || p.Shipped == 0 {
				return false
			}
		}
		return saw
	})

	// SIGKILL the owner — no graceful shutdown, no final snapshot.
	if err := procs[0].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	procs[0].Wait()

	waitHTTP("survivors mark n0 down", 20*time.Second, func() bool {
		for _, url := range urls[1:] {
			var st sbqa.ClusterStatus
			if err := smokeGetJSON(url+"/v1/cluster", &st); err != nil {
				return false
			}
			for _, id := range st.Live {
				if id == "n0" {
					return false
				}
			}
			down := false
			for _, p := range st.Peers {
				if p.ID == "n0" && p.Health == "down" {
					down = true
				}
			}
			if !down {
				return false
			}
		}
		return true
	})

	// c now routes to a survivor; its memory must have survived the kill.
	liveRing := sbqa.NewClusterRing(ids[1:], 0)
	newOwner := urls[1]
	other := urls[2]
	if liveRing.Owner(sbqa.ConsumerID(c)) == "n2" {
		newOwner, other = urls[2], urls[1]
	}
	if err := smokeGetJSON(newOwner+"/v1/stats", &stats); err != nil {
		t.Fatal(err)
	}
	gotSat, ok := stats.Satisfaction.Consumers[fmt.Sprint(c)]
	if !ok {
		t.Fatalf("new owner has no restored satisfaction for consumer %d", c)
	}
	if gotSat != wantSat {
		t.Fatalf("restored satisfaction %v != owner's pre-kill %v", gotSat, wantSat)
	}

	// And the follower actually serves the consumer: re-register through
	// the OTHER survivor (still a forwarded hop) and submit.
	postJSON(t, other+"/v1/consumers", consumerRequest{ID: c, Intention: 0.8}, nil)
	var qr queryResponse
	resp := postJSON(t, other+"/v1/queries", queryRequest{Consumer: c, N: 1, Work: 0.1, Wait: "allocation"}, &qr)
	if resp.StatusCode != http.StatusOK || len(qr.Selected) == 0 {
		t.Fatalf("post-failover submit: status %d %+v", resp.StatusCode, qr)
	}
}
