package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"sbqa"
)

// TestReadyzNotReadyWindow drives the gateway through its startup sequence:
// before init, /v1/healthz is alive, /v1/readyz and every engine-backed
// endpoint answer 503; after init, readyz flips to 200.
func TestReadyzNotReadyWindow(t *testing.T) {
	gw := newGatewayShell()
	defer gw.close()
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// Liveness holds during the window; readiness does not.
	if resp, body := get("/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before init: %d %s", resp.StatusCode, body)
	} else if !strings.Contains(body, `"ready":false`) {
		t.Errorf("healthz before init should report ready:false, got %s", body)
	}
	if resp, _ := get("/v1/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before init: %d, want 503", resp.StatusCode)
	}
	if resp, body := get("/v1/stats"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stats before init: %d %s, want 503", resp.StatusCode, body)
	}
	var posted struct {
		Error string `json:"error"`
	}
	resp := postJSON(t, srv.URL+"/v1/queries", map[string]any{"consumer": 0, "n": 1, "work": 1}, &posted)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit before init: %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(posted.Error, "starting") {
		t.Errorf("submit before init error %q, want a starting notice", posted.Error)
	}
	// Metrics stay scrapeable and report not-ready.
	if resp, body := get("/v1/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics before init: %d", resp.StatusCode)
	} else if !strings.Contains(body, "sbqa_ready 0") {
		t.Errorf("metrics before init missing sbqa_ready 0:\n%s", body)
	}

	if err := gw.init(sbqa.WithWindow(10), sbqa.WithPolicy(sbqa.DefaultPolicy())); err != nil {
		t.Fatal(err)
	}

	if resp, body := get("/v1/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after init: %d %s", resp.StatusCode, body)
	} else if !strings.Contains(body, `"status":"ready"`) {
		t.Errorf("readyz after init: %s", body)
	}
	if resp, _ := get("/v1/stats"); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats after init: %d", resp.StatusCode)
	}
	if _, body := get("/v1/healthz"); !strings.Contains(body, `"ready":true`) {
		t.Errorf("healthz after init should report ready:true, got %s", body)
	}
}

// TestMetricsEndpoint checks the Prometheus text exposition: content type,
// HELP/TYPE preambles, per-shard labels, and the persistence family when a
// state dir is configured.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	gw, err := newGateway(
		sbqa.WithWindow(10),
		sbqa.WithConcurrency(2),
		sbqa.WithPolicy(sbqa.DefaultPolicy()),
		sbqa.WithPersistence(dir, sbqa.PersistSyncEvery(1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	var reg struct {
		ID int `json:"id"`
	}
	postJSON(t, srv.URL+"/v1/workers", map[string]any{"id": 1, "capacity": 100, "intention": 0.5}, &reg)
	postJSON(t, srv.URL+"/v1/consumers", map[string]any{"id": 0, "intention": 0.6}, &reg)
	var qr queryResponse
	postJSON(t, srv.URL+"/v1/queries", map[string]any{"consumer": 0, "n": 1, "work": 1, "wait": "results"}, &qr)
	if qr.Error != "" {
		t.Fatalf("query failed: %s", qr.Error)
	}

	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"# HELP sbqa_queries_submitted_total",
		"# TYPE sbqa_queries_submitted_total counter",
		"sbqa_queries_submitted_total 1",
		"sbqa_ready 1",
		"sbqa_providers 1",
		"sbqa_consumers 1",
		`sbqa_shard_mediations_total{shard="0"}`,
		`sbqa_shard_mediations_total{shard="1"}`,
		`sbqa_shard_queue_depth{shard="0"}`,
		`sbqa_worker_queue_depth{worker="1"}`,
		"sbqa_events_dropped_total",
		"# TYPE sbqa_persist_records_appended_total counter",
		"sbqa_persist_restore_snapshot_loaded 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestDaemonRestartWalkthrough is the operator story from the README: run a
// gateway with -state-dir, accumulate satisfaction, stop it (graceful flush),
// start a new gateway over the same directory, and find the learned state —
// satisfaction, policy generation, query counter — already there.
func TestDaemonRestartWalkthrough(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	boot := []sbqa.EngineOption{
		sbqa.WithWindow(20),
		sbqa.WithPolicy(sbqa.DefaultPolicy()),
		sbqa.WithPersistence(dir, sbqa.PersistSyncEvery(1)),
	}

	gw1, err := newGateway(boot...)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(gw1.handler())
	var reg struct {
		ID int `json:"id"`
	}
	postJSON(t, srv1.URL+"/v1/workers", map[string]any{"id": 7, "capacity": 100, "intention": 0.8}, &reg)
	postJSON(t, srv1.URL+"/v1/consumers", map[string]any{"id": 0, "intention": 0.6}, &reg)
	const queries = 12
	for i := 0; i < queries; i++ {
		var qr queryResponse
		postJSON(t, srv1.URL+"/v1/queries", map[string]any{"consumer": 0, "n": 1, "work": 1, "wait": "results"}, &qr)
		if qr.Error != "" {
			t.Fatalf("query %d: %s", i, qr.Error)
		}
	}
	// Reconfigure so the restart has a generation to restore.
	req, _ := http.NewRequest(http.MethodPut, srv1.URL+"/v1/policy", strings.NewReader(`{"kind":"sbqa","k":8,"kn":4,"name":"tuned"}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /v1/policy: %d", resp.StatusCode)
	}
	var before statsResponse
	getJSON(t, srv1.URL+"/v1/stats", &before)
	srv1.Close()
	gw1.close() // graceful: drains the journal, flushes the final snapshot

	gw2, err := newGateway(boot...)
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.close()
	srv2 := httptest.NewServer(gw2.handler())
	defer srv2.Close()

	var ready map[string]any
	getJSON(t, srv2.URL+"/v1/readyz", &ready)
	if ready["status"] != "ready" {
		t.Fatalf("restarted daemon not ready: %v", ready)
	}
	var after statsResponse
	getJSON(t, srv2.URL+"/v1/stats", &after)
	if after.Persistence == nil || !after.Persistence.Restore.SnapshotLoaded {
		t.Fatal("restart did not restore a snapshot")
	}
	if after.QueriesSubmitted != before.QueriesSubmitted {
		t.Errorf("query counter %d after restart, want %d", after.QueriesSubmitted, before.QueriesSubmitted)
	}
	if after.PolicyGeneration != before.PolicyGeneration {
		t.Errorf("policy generation %d after restart, want %d", after.PolicyGeneration, before.PolicyGeneration)
	}
	// The learned satisfaction survived the restart — before any new
	// traffic, and with the participants themselves not yet re-registered.
	for id, want := range before.Satisfaction.Consumers {
		if got, ok := after.Satisfaction.Consumers[id]; !ok || got != want {
			t.Errorf("consumer %s δs after restart %v, want %v", id, got, want)
		}
	}
	for id, want := range before.Satisfaction.Providers {
		if got, ok := after.Satisfaction.Providers[id]; !ok || got != want {
			t.Errorf("provider %s δs after restart %v, want %v", id, got, want)
		}
	}
	var policy policyResponse
	getJSON(t, srv2.URL+"/v1/policy", &policy)
	if policy.Policy == nil || policy.Policy.Name != "tuned" {
		t.Errorf("restored policy %+v, want the reconfigured \"tuned\" spec", policy.Policy)
	}
}

// getJSON fetches and decodes one JSON endpoint.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
