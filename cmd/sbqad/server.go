package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"mime"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sbqa"
)

// gateway is the HTTP/JSON front end over the asynchronous Engine API:
// submit, register-worker/consumer (local or webhook-backed remote), stats,
// metrics, health/readiness, and a server-sent-events stream of the
// engine's observer events plus per-query results.
//
// The gateway separates liveness from readiness: the HTTP server may bind
// and answer /v1/healthz while the engine is still being built — in
// particular while a -state-dir restore replays a large journal. Until init
// completes, /v1/readyz (and every engine-backed endpoint) answers 503.
type gateway struct {
	// ready flips once init has built (and, with -state-dir, restored)
	// the engine; eng is written before the flip and only read by
	// handlers after observing it.
	ready atomic.Bool
	eng   *sbqa.Engine
	hub   *hub

	// node is non-nil in cluster mode (-node-id): it owns the consistent-
	// hash ring, peer health, and WAL replication. cmx counts the
	// gateway's forwarding traffic; forwardClient carries forwarded
	// requests (no client-level timeout — each forward is bounded by the
	// inbound request's context capped at forwardTimeout).
	node          *sbqa.ClusterNode
	cmx           clusterMetrics
	forwardClient *http.Client

	// webhookClient performs the remote participants' intention calls. The
	// engine's per-participant deadline bounds each call through its
	// context; the client's own timeout is the hard upper bound that keeps
	// a hung webhook from wedging a shard when the daemon runs with
	// -participant-deadline 0 (gateway submissions use WithoutCancel, so
	// no request context would ever cancel the call).
	webhookClient *http.Client

	// shuttingDown closes when graceful shutdown begins, ending the SSE
	// streams so http.Server.Shutdown does not wait out its whole grace
	// period behind connected subscribers.
	shuttingDown chan struct{}

	mu      sync.Mutex
	workers map[sbqa.ProviderID]managedWorker

	// policyMu serializes PUT /v1/policy so the generation echoed to each
	// caller is the one its own Reconfigure was assigned (the engine
	// serializes internally, but the counter read would otherwise race
	// with a concurrent PUT).
	policyMu sync.Mutex

	// limiter is the QoS admission filter applied before Submit: per-
	// consumer and per-class token buckets. Nil admits everything. Swapped
	// wholesale by -qos flags at boot and by PUT /v1/policy when the spec
	// carries a qos block, so admission reconfigures live with the
	// scheduler.
	limiter atomic.Pointer[sbqa.QoSLimiter]
	// admissionRejected accumulates 429s across limiter swaps (each
	// limiter's own counter dies with it).
	admissionRejected atomic.Uint64
}

// webhookClientTimeout is the transport-level ceiling on one intention
// webhook call, effective even with -participant-deadline 0.
const webhookClientTimeout = 30 * time.Second

// managedWorker is a worker the gateway started and owns: the plain local
// executor or its webhook-backed decoration.
type managedWorker interface {
	ProviderID() sbqa.ProviderID
	Close()
}

// newGatewayShell builds a gateway whose HTTP surface is immediately
// servable but not yet ready: every engine-backed endpoint answers 503
// until init completes. serve uses this to bind the listener before the
// (possibly long) state restore.
func newGatewayShell() *gateway {
	return &gateway{
		hub:           newHub(),
		webhookClient: &http.Client{Timeout: webhookClientTimeout},
		forwardClient: &http.Client{},
		shuttingDown:  make(chan struct{}),
		workers:       make(map[sbqa.ProviderID]managedWorker),
	}
}

// init builds the engine — restoring persisted state when the options carry
// WithPersistence — with the gateway's event hub installed as the engine
// observer, then marks the gateway ready.
func (g *gateway) init(opts ...sbqa.EngineOption) error {
	return g.initWithCluster(nil, opts...)
}

// initWithCluster is init plus cluster membership: the node (ring,
// heartbeats, replication, submit guard) is built and started before the
// ready flip, so no unguarded submission can slip through the window
// between engine construction and guard installation.
func (g *gateway) initWithCluster(cs *clusterSettings, opts ...sbqa.EngineOption) error {
	eng, err := sbqa.NewEngine(append(opts, sbqa.WithObserver(g.hub.observer()))...)
	if err != nil {
		return err
	}
	g.eng = eng
	// Derive the admission limiter from the QoS spec the engine actually
	// runs (WithQoS or the boot policy's qos block) — one source of truth
	// for token buckets and class queues. Specs without admission rates
	// leave the hot path limiter-free.
	if qs := eng.QoSSpec(); hasAdmissionRates(qs) {
		g.applyQoS(&qs)
	}
	if cs != nil {
		if err := g.initCluster(cs); err != nil {
			eng.Close()
			g.eng = nil
			return err
		}
	}
	g.ready.Store(true)
	return nil
}

// hasAdmissionRates reports whether the spec configures any token bucket.
func hasAdmissionRates(qs sbqa.QoSSpec) bool {
	if qs.ConsumerRate > 0 {
		return true
	}
	for _, c := range qs.Classes {
		if c.Rate > 0 {
			return true
		}
	}
	return false
}

// newGateway builds a ready gateway in one step (tests and embedders that
// do not need the not-ready window).
func newGateway(opts ...sbqa.EngineOption) (*gateway, error) {
	g := newGatewayShell()
	if err := g.init(opts...); err != nil {
		return nil, err
	}
	return g, nil
}

// applyQoS swaps the gateway's admission limiter: a spec with admission
// rates installs fresh token buckets (momentary amnesty — refused counts
// accumulate on the gateway, not the limiter), nil uninstalls admission
// entirely. The limiter runs on its own monotonic clock; it only ever
// differences times, so the origin is irrelevant.
func (g *gateway) applyQoS(spec *sbqa.QoSSpec) {
	if spec == nil {
		g.limiter.Store(nil)
		return
	}
	start := time.Now()
	g.limiter.Store(sbqa.NewQoSLimiter(*spec, func() float64 {
		return time.Since(start).Seconds()
	}))
}

// engine returns the engine once the gateway is ready, nil before.
func (g *gateway) engine() *sbqa.Engine {
	if !g.ready.Load() {
		return nil
	}
	return g.eng
}

// requireEngine resolves the engine or answers 503 — the standard guard of
// every engine-backed handler during the restore window.
func (g *gateway) requireEngine(w http.ResponseWriter) (*sbqa.Engine, bool) {
	eng := g.engine()
	if eng == nil {
		writeError(w, http.StatusServiceUnavailable, errStarting)
		return nil, false
	}
	return eng, true
}

// errStarting is the not-ready answer while the engine restores.
var errStarting = errors.New("starting: engine restoring persisted state")

// beginShutdown ends the SSE streams (idempotent); call it before
// http.Server.Shutdown so connected subscribers do not hold the server open
// for the whole grace period.
func (g *gateway) beginShutdown() {
	select {
	case <-g.shuttingDown:
	default:
		close(g.shuttingDown)
	}
}

// close shuts the engine and every worker the gateway started. With
// persistence configured, Engine.Close drains the journal and flushes the
// final snapshot — this is the daemon's flush-on-SIGTERM path.
func (g *gateway) close() {
	g.beginShutdown()
	if g.node != nil {
		// Stop heartbeats and WAL shipping before the engine seals its
		// journal on the way down.
		g.node.Close()
	}
	if g.eng != nil {
		g.eng.Close()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, w := range g.workers {
		w.Close()
	}
}

// handler routes the gateway's endpoints.
func (g *gateway) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/consumers", g.handleRegisterConsumer)
	mux.HandleFunc("POST /v1/workers", g.handleRegisterWorker)
	mux.HandleFunc("DELETE /v1/workers/{id}", g.handleUnregisterWorker)
	mux.HandleFunc("POST /v1/queries", g.handleSubmit)
	mux.HandleFunc("GET /v1/queries/{id}/trace", g.handleQueryTrace)
	mux.HandleFunc("GET /v1/debug/traces", g.handleDebugTraces)
	mux.HandleFunc("GET /v1/debug/explain/{id}", g.handleDebugExplain)
	mux.HandleFunc("GET /v1/policy", g.handleGetPolicy)
	mux.HandleFunc("PUT /v1/policy", g.handlePutPolicy)
	mux.HandleFunc("POST /v1/policy/preview", g.handlePolicyPreview)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	mux.HandleFunc("GET /v1/events", g.handleEvents)
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", g.handleReadyz)
	mux.HandleFunc("GET /v1/cluster", g.handleCluster)
	mux.HandleFunc("GET "+sbqa.ClusterSegmentsPath, g.handleSegmentsGet)
	mux.HandleFunc("POST "+sbqa.ClusterSegmentsPath, g.handleSegmentsPost)
	mux.HandleFunc("POST "+sbqa.ClusterForwardPath, g.handleSubmit)
	mux.HandleFunc("POST "+sbqa.ClusterForwardConsumersPath, g.handleRegisterConsumer)
	if enablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// maxRequestBody bounds every JSON request body the gateway accepts; larger
// bodies fail with 413 before the decoder buffers them.
const maxRequestBody = 1 << 20 // 1 MiB

// decodeJSON hardens and decodes one JSON request body: an explicit
// Content-Type other than application/json is rejected with 415 (a missing
// Content-Type is tolerated for curl-friendliness), the body is capped at
// maxRequestBody (413 past it), and malformed JSON fails with 400. Returns
// false after writing the error response.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && mt != "text/json") {
			writeError(w, http.StatusUnsupportedMediaType,
				fmt.Errorf("unsupported content type %q; use application/json", ct))
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// consumerRequest registers a consumer. Without intention_url the consumer
// is in-process: a constant intention toward every provider, optionally
// discounted by provider utilization ("prefer idle" — the useful default
// for load-aware consumers). With intention_url the consumer is a remote
// participant: the daemon gathers CI_q over the whole candidate batch from
// the webhook per mediation, under the engine's per-participant deadline,
// imputing from registry state when the webhook stays silent.
type consumerRequest struct {
	ID           int     `json:"id"`
	Intention    float64 `json:"intention"`
	PreferIdle   bool    `json:"prefer_idle"`
	IntentionURL string  `json:"intention_url"`
}

func (g *gateway) handleRegisterConsumer(w http.ResponseWriter, r *http.Request) {
	eng, ok := g.requireEngine(w)
	if !ok {
		return
	}
	var req consumerRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if !g.routeOrForward(w, r, req.ID, sbqa.ClusterForwardConsumersPath, &g.cmx.fwdConsumers, req) {
		return
	}
	if req.IntentionURL != "" {
		eng.RegisterConsumer(&remoteConsumer{
			id:       sbqa.ConsumerID(req.ID),
			url:      req.IntentionURL,
			fallback: sbqa.Intention(req.Intention).Clamp(),
			client:   g.webhookClient,
		})
		writeJSON(w, http.StatusCreated, map[string]int{"id": req.ID})
		return
	}
	base := req.Intention
	preferIdle := req.PreferIdle
	eng.RegisterConsumer(sbqa.LiveFuncConsumer{
		ID: sbqa.ConsumerID(req.ID),
		Fn: func(_ sbqa.Query, snap sbqa.ProviderSnapshot) sbqa.Intention {
			v := base
			if preferIdle {
				v -= snap.Utilization
			}
			return sbqa.Intention(v).Clamp()
		},
	})
	writeJSON(w, http.StatusCreated, map[string]int{"id": req.ID})
}

// workerRequest starts a goroutine worker with a constant intention,
// optionally class-restricted. With intention_url the worker's
// mediation-time intention is gathered from the webhook instead (the
// constant becomes the fallback for non-batched paths); execution still
// happens on the daemon's goroutines at the declared capacity.
type workerRequest struct {
	ID           int     `json:"id"`
	Capacity     float64 `json:"capacity"`
	QueueCap     int     `json:"queue_cap"`
	Intention    float64 `json:"intention"`
	Classes      []int   `json:"classes"`
	IntentionURL string  `json:"intention_url"`
}

func (g *gateway) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	eng, ok := g.requireEngine(w)
	if !ok {
		return
	}
	var req workerRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	in := sbqa.Intention(req.Intention).Clamp()
	worker, err := sbqa.NewLiveWorker(sbqa.ProviderID(req.ID), req.Capacity, req.QueueCap,
		func(sbqa.Query) sbqa.Intention { return in })
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Classes) > 0 {
		worker.SetClasses(req.Classes...)
	}
	var managed managedWorker = worker
	if req.IntentionURL != "" {
		managed = &remoteWorker{LiveWorker: worker, url: req.IntentionURL, client: g.webhookClient}
	}
	g.mu.Lock()
	if old, ok := g.workers[worker.ProviderID()]; ok {
		old.Close()
	}
	g.workers[worker.ProviderID()] = managed
	g.mu.Unlock()
	if rw, ok := managed.(*remoteWorker); ok {
		// Registered as a generic provider: the directory sees the webhook
		// decoration (ProviderParticipant), dispatch sees the embedded
		// executor.
		eng.RegisterProvider(rw)
	} else {
		eng.RegisterWorker(worker)
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": req.ID})
}

func (g *gateway) handleUnregisterWorker(w http.ResponseWriter, r *http.Request) {
	eng, ok := g.requireEngine(w)
	if !ok {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad worker id: %w", err))
		return
	}
	pid := sbqa.ProviderID(id)
	g.mu.Lock()
	worker, ok := g.workers[pid]
	delete(g.workers, pid)
	g.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("worker %d not registered via this gateway", id))
		return
	}
	eng.UnregisterWorker(pid)
	worker.Close()
	writeJSON(w, http.StatusOK, map[string]int{"id": id})
}

// queryRequest submits one query. wait selects how much of the lifecycle
// the HTTP response covers: "none" returns the ticket's query ID
// immediately, "allocation" (the default) waits for the mediation outcome,
// "results" waits for every per-worker result. qos names the service class
// ("interactive", "batch", "background", or any class the running qos spec
// declares; unknown names fold into the default class); deadline_ms bounds
// the query's whole lifetime — a deadline the shard cannot meet sheds the
// query immediately with a 503 instead of queueing it to fail.
type queryRequest struct {
	Consumer   int     `json:"consumer"`
	Class      int     `json:"class"`
	N          int     `json:"n"`
	Work       float64 `json:"work"`
	Wait       string  `json:"wait"`
	QoS        string  `json:"qos"`
	DeadlineMS float64 `json:"deadline_ms"`
}

type queryResponse struct {
	QueryID  int64             `json:"query_id"`
	Selected []sbqa.ProviderID `json:"selected,omitempty"`
	Proposed []sbqa.ProviderID `json:"proposed,omitempty"`
	Results  []resultJSON      `json:"results,omitempty"`
	Error    string            `json:"error,omitempty"`
}

type resultJSON struct {
	QueryID   int64   `json:"query_id"`
	Provider  int     `json:"provider"`
	LatencyMS float64 `json:"latency_ms"`
}

func (g *gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	eng, ok := g.requireEngine(w)
	if !ok {
		return
	}
	admStart := sbqa.TraceNow()
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Tracing: adopt an inbound traceparent (a forwarded hop, or an
	// upstream client carrying its own trace) or draw this node's sampling
	// decision. A sampled context rides the request context so a cluster
	// forward can propagate it and record the hop as a span.
	tr := eng.Tracer()
	var tc sbqa.TraceContext
	if tr != nil {
		if inbound, ok := sbqa.ParseTraceparent(r.Header.Get(sbqa.TraceparentHeader)); ok {
			tc = tr.StartRemote(inbound)
		} else {
			tc, _ = tr.StartLocal()
		}
		if tc.Sampled {
			r = r.WithContext(withTraceContext(r.Context(), tc))
		}
	}
	if !g.routeOrForward(w, r, req.Consumer, sbqa.ClusterForwardPath, &g.cmx.fwdQueries, req) {
		return
	}
	if req.N < 1 {
		req.N = 1
	}
	// Token-bucket admission runs before the engine sees the query: an
	// over-limit consumer (or class) gets 429 + Retry-After here, costing
	// the shard nothing.
	if lim := g.limiter.Load(); lim != nil {
		class, _ := lim.Resolve(req.QoS)
		if d := lim.Allow(int64(req.Consumer), class); !d.OK {
			g.admissionRejected.Add(1)
			if tc.Sampled {
				tr.RecordSpan(tc.ID, sbqa.TraceSpan{
					Name: sbqa.StageAdmission, Class: req.QoS,
					Start: admStart, End: sbqa.TraceNow(),
				})
				tr.Finish(tc.ID, "rejected", "rate_limited", nil)
			}
			writeRetryable(w, http.StatusTooManyRequests, rejectJSON{
				Error:        "rate_limited",
				Scope:        d.Scope,
				Class:        d.Class,
				RetryAfterMS: d.RetryAfter * 1000,
			})
			return
		}
	}
	q := sbqa.Query{
		Consumer: sbqa.ConsumerID(req.Consumer),
		Class:    req.Class,
		N:        req.N,
		Work:     req.Work,
		Trace:    tc,
	}
	// The admission span must land before Submit: from the moment the
	// ticket enqueues, the asynchronous pipeline may finish the trace at
	// any time, and spans recorded after Finish are not retained.
	if tc.Sampled {
		tr.RecordSpan(tc.ID, sbqa.TraceSpan{
			Name: sbqa.StageAdmission, Class: req.QoS,
			Start: admStart, End: sbqa.TraceNow(),
		})
	}
	var qopts []sbqa.QueryOption
	if req.QoS != "" {
		qopts = append(qopts, sbqa.WithQoSClass(req.QoS))
	}
	if req.DeadlineMS > 0 {
		qopts = append(qopts, sbqa.WithDeadline(time.Duration(req.DeadlineMS*float64(time.Millisecond))))
	}
	// Submit with a detached context: once the gateway accepts a query its
	// lifecycle must not be tied to the HTTP request — net/http cancels
	// r.Context() the moment the handler returns, which would make
	// wait:"none" submissions fail dispatch before the shard ever picked
	// them up. The request context still bounds how long the caller waits
	// below.
	t := eng.Submit(context.WithoutCancel(r.Context()), q, qopts...)
	// Results reach the SSE stream whatever the caller waits for.
	go g.publishResults(t)

	resp := queryResponse{QueryID: int64(t.Query().ID)}
	var lifeErr error
	switch req.Wait {
	case "none":
		// Sheds happen at enqueue, so a shed ticket is already finished
		// when Submit returns — answer the truth, not a hollow 202.
		select {
		case <-t.Done():
			if _, err := t.Allocation(); err != nil {
				if se, ok := sbqa.AsShedError(err); ok {
					writeShed(w, se)
					return
				}
			}
		default:
		}
		writeJSON(w, http.StatusAccepted, resp)
		return
	case "results":
		results, err := t.Await(r.Context())
		lifeErr = err
		if err != nil {
			resp.Error = err.Error()
		}
		if a, _ := t.Allocation(); a != nil {
			resp.Selected, resp.Proposed = a.Selected, a.Proposed
		}
		for _, res := range results {
			resp.Results = append(resp.Results, resultJSON{
				QueryID:   int64(res.Query.ID),
				Provider:  int(res.Provider),
				LatencyMS: float64(res.Latency) / float64(time.Millisecond),
			})
		}
	default: // "allocation"
		a, err := t.Allocation()
		lifeErr = err
		if err != nil {
			resp.Error = err.Error()
		}
		if a != nil {
			resp.Selected, resp.Proposed = a.Selected, a.Proposed
		}
	}
	status := http.StatusOK
	if resp.Error != "" && resp.Selected == nil {
		if se, ok := sbqa.AsShedError(lifeErr); ok {
			writeShed(w, se)
			return
		}
		status = http.StatusConflict
	}
	writeJSON(w, status, resp)
}

// rejectJSON is the structured body of a 429 (admission) or 503 (shed)
// refusal: machine-readable cause plus a retry hint.
type rejectJSON struct {
	Error        string  `json:"error"`
	Scope        string  `json:"scope,omitempty"`
	Class        string  `json:"class,omitempty"`
	Reason       string  `json:"reason,omitempty"`
	QueueDepth   int     `json:"queue_depth,omitempty"`
	RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
}

// writeRetryable answers one refusal with a Retry-After header (whole
// seconds, rounded up, only when the hint is finite) and the structured
// body.
func writeRetryable(w http.ResponseWriter, status int, body rejectJSON) {
	if sec := body.RetryAfterMS / 1000; sec > 0 && !math.IsInf(sec, 1) {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(sec))))
	}
	writeJSON(w, status, body)
}

// writeShed maps a load-shed ticket to 503: the refusal is the engine
// protecting itself under overload, not a client error.
func writeShed(w http.ResponseWriter, se *sbqa.ShedError) {
	writeRetryable(w, http.StatusServiceUnavailable, rejectJSON{
		Error:        "shed",
		Class:        se.Class,
		Reason:       se.Reason,
		QueueDepth:   se.QueueDepth,
		RetryAfterMS: se.EstimatedWait * 1000,
	})
}

// publishResults forwards a ticket's completion to the event stream as one
// "result" event per worker delivery.
func (g *gateway) publishResults(t *sbqa.Ticket) {
	<-t.Done()
	for _, res := range t.Results() {
		g.hub.publish("result", resultJSON{
			QueryID:   int64(res.Query.ID),
			Provider:  int(res.Provider),
			LatencyMS: float64(res.Latency) / float64(time.Millisecond),
		})
	}
}

// statsResponse is Engine.Stats plus the current satisfaction of every
// tracked participant.
type statsResponse struct {
	Shards           []shardJSON     `json:"shards"`
	QueriesSubmitted int64           `json:"queries_submitted"`
	Providers        int             `json:"providers"`
	Consumers        int             `json:"consumers"`
	WorkerQueues     map[string]int  `json:"worker_queue_depths"`
	Satisfaction     satisfactionMap `json:"satisfaction"`
	PolicyGeneration uint64          `json:"policy_generation"`
	EventsDropped    uint64          `json:"events_dropped"`
	Persistence      *persistJSON    `json:"persistence,omitempty"`

	// Overload-survival counters: gateway-level admission rejections
	// (429s) and the engine's current brownout level (0 = none).
	AdmissionRejected uint64 `json:"admission_rejected"`
	Brownout          int    `json:"brownout"`
}

// persistJSON surfaces the durability counters (absent without -state-dir).
type persistJSON struct {
	RecordsAppended  uint64 `json:"records_appended"`
	RecordsDropped   uint64 `json:"records_dropped"`
	AppendErrors     uint64 `json:"append_errors"`
	Syncs            uint64 `json:"syncs"`
	SealedSegments   int    `json:"sealed_segments"`
	SnapshotsWritten uint64 `json:"snapshots_written"`
	Compactions      uint64 `json:"compactions"`
	QueueDepth       int    `json:"queue_depth"`
	Restore          struct {
		SnapshotLoaded  bool `json:"snapshot_loaded"`
		Consumers       int  `json:"consumers"`
		Providers       int  `json:"providers"`
		ReplayedRecords int  `json:"replayed_records"`
		TornTail        bool `json:"torn_tail"`
	} `json:"restore"`
}

// newPersistJSON converts the engine's persistence stats block.
func newPersistJSON(ps *sbqa.PersistenceStats) *persistJSON {
	if ps == nil {
		return nil
	}
	p := &persistJSON{
		RecordsAppended:  ps.RecordsAppended,
		RecordsDropped:   ps.RecordsDropped,
		AppendErrors:     ps.AppendErrors,
		Syncs:            ps.Syncs,
		SealedSegments:   ps.SealedSegments,
		SnapshotsWritten: ps.SnapshotsWritten,
		Compactions:      ps.Compactions,
		QueueDepth:       ps.QueueDepth,
	}
	p.Restore.SnapshotLoaded = ps.Restore.SnapshotLoaded
	p.Restore.Consumers = ps.Restore.Consumers
	p.Restore.Providers = ps.Restore.Providers
	p.Restore.ReplayedRecords = ps.Restore.ReplayedRecords
	p.Restore.TornTail = ps.Restore.TornTail
	return p
}

type shardJSON struct {
	Mediations        uint64  `json:"mediations"`
	Rejections        uint64  `json:"rejections"`
	DispatchFailures  uint64  `json:"dispatch_failures"`
	MeanCandidates    float64 `json:"mean_candidates"`
	QueueDepth        int     `json:"queue_depth"`
	QueueHighWater    int     `json:"queue_high_water"`
	QueueEnqueued     uint64  `json:"queue_enqueued"`
	QueueDequeued     uint64  `json:"queue_dequeued"`
	QueueShed         uint64  `json:"queue_shed"`
	Imputations       uint64  `json:"imputations"`
	IntentionTimeouts uint64  `json:"intention_timeouts"`
	PolicyGeneration  uint64  `json:"policy_generation"`
	PolicySwaps       uint64  `json:"policy_swaps"`
}

type satisfactionMap struct {
	Consumers map[string]float64 `json:"consumers"`
	Providers map[string]float64 `json:"providers"`
}

func (g *gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	eng, ok := g.requireEngine(w)
	if !ok {
		return
	}
	st := eng.Stats()
	resp := statsResponse{
		Shards:           make([]shardJSON, len(st.Shards)),
		QueriesSubmitted: st.QueriesSubmitted,
		Providers:        st.Providers,
		Consumers:        st.Consumers,
		WorkerQueues:     make(map[string]int, len(st.WorkerQueueDepths)),
		Satisfaction: satisfactionMap{
			Consumers: make(map[string]float64),
			Providers: make(map[string]float64),
		},
		PolicyGeneration: st.PolicyGeneration,
		EventsDropped:    g.hub.droppedEvents(),
		Persistence:      newPersistJSON(st.Persistence),

		AdmissionRejected: g.admissionRejected.Load(),
		Brownout:          eng.Brownout(),
	}
	for i, sh := range st.Shards {
		resp.Shards[i] = shardJSON{
			Mediations:        sh.Mediations,
			Rejections:        sh.Rejections,
			DispatchFailures:  sh.DispatchFailures,
			MeanCandidates:    sh.MeanCandidates,
			QueueDepth:        sh.QueueDepth,
			QueueHighWater:    sh.QueueHighWater,
			QueueEnqueued:     sh.QueueEnqueued,
			QueueDequeued:     sh.QueueDequeued,
			QueueShed:         sh.QueueShed,
			Imputations:       sh.Imputations,
			IntentionTimeouts: sh.IntentionTimeouts,
			PolicyGeneration:  sh.PolicyGeneration,
			PolicySwaps:       sh.PolicySwaps,
		}
	}
	for id, depth := range st.WorkerQueueDepths {
		resp.WorkerQueues[strconv.Itoa(int(id))] = depth
	}
	reg := eng.Registry()
	for _, id := range reg.ConsumerIDs() {
		resp.Satisfaction.Consumers[strconv.Itoa(int(id))] = reg.ConsumerSatisfaction(id)
	}
	for _, id := range reg.ProviderIDs() {
		resp.Satisfaction.Providers[strconv.Itoa(int(id))] = reg.ProviderSatisfaction(id)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness: the process is up and serving HTTP. It
// answers 200 even while the engine restores — restart loops must not kill
// a daemon replaying a large journal; use /v1/readyz to gate traffic.
func (g *gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	eng := g.engine()
	if eng == nil {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "ready": false})
		return
	}
	st := eng.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"ready":     true,
		"shards":    len(st.Shards),
		"providers": st.Providers,
		"consumers": st.Consumers,
	})
}

// handleReadyz reports readiness: 503 until the engine is built and any
// persisted state has been restored and replayed, 200 (with the restore
// summary) afterwards. Load balancers gate traffic on this.
func (g *gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	eng := g.engine()
	if eng == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
		return
	}
	resp := map[string]any{"status": "ready"}
	if ps := newPersistJSON(eng.Stats().Persistence); ps != nil {
		resp["restore"] = ps.Restore
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEvents streams the engine's event feed as server-sent events.
// In cluster mode a ?consumer=N parameter routes the subscription: when
// another node owns that consumer, the stream is proxied from the owner
// so clients can subscribe anywhere and still see their events.
func (g *gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	if c := r.URL.Query().Get("consumer"); c != "" && g.node != nil {
		id, err := strconv.Atoi(c)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad consumer: %w", err))
			return
		}
		owner, self, rerr := g.node.Route(sbqa.ConsumerID(id))
		if !self {
			if r.Header.Get(sbqa.ClusterForwardedFromHeader) != "" {
				g.cmx.notOwner.Add(1)
				writeRoutedError(w, "not_owner", owner,
					fmt.Errorf("consumer %d is owned by node %s", id, owner.ID))
				return
			}
			if rerr != nil {
				g.cmx.peerDown.Add(1)
				writeRoutedError(w, "peer_down", owner,
					fmt.Errorf("consumer %d is owned by node %s, which is down", id, owner.ID))
				return
			}
			g.proxySSE(w, r, owner, c)
			return
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch, unsubscribe := g.hub.subscribe()
	defer unsubscribe()
	for {
		select {
		case ev := <-ch:
			data, err := json.Marshal(ev.data)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.kind, data)
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-g.shuttingDown:
			return
		}
	}
}
