package main

// Debug surface: the flight-recorder trace endpoints and the flag-gated
// pprof mount.
//
//	GET /v1/queries/{id}/trace   one query's full trace (spans + explain);
//	                             {id} is the numeric query ID or the
//	                             32-hex-digit W3C trace ID
//	GET /v1/debug/traces         the slow-query log: finished traces from the
//	                             ring, slowest first; ?min_ms= filters by
//	                             total duration, ?limit= caps the answer
//	GET /v1/debug/explain/{id}   just the allocation explain record — the
//	                             ranked per-provider score breakdown
//	GET /debug/pprof/            net/http/pprof, only with -debug-pprof
//
// Tracing is a boot-time option (-trace-sample, -trace-buffer); without a
// recorder these endpoints answer 404.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"sbqa"
)

// enablePprof mounts net/http/pprof under /debug/pprof/ when true (the
// -debug-pprof flag). Off by default: profiling endpoints expose heap and
// goroutine internals and do not belong on an open listener.
var enablePprof bool

// traceCtxKey carries a sampled trace context through the request context,
// so a cluster forward can propagate it as a traceparent header and record
// the hop as a span.
type traceCtxKey struct{}

func withTraceContext(ctx context.Context, tc sbqa.TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

func traceContextFrom(ctx context.Context) (sbqa.TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(sbqa.TraceContext)
	return tc, ok
}

// requireTracer resolves the engine's trace recorder, answering 404 when
// the daemon runs without tracing (and 503 while the engine restores).
func (g *gateway) requireTracer(w http.ResponseWriter) (*sbqa.TraceRecorder, bool) {
	eng, ok := g.requireEngine(w)
	if !ok {
		return nil, false
	}
	tr := eng.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled (start with -trace-sample)"))
		return nil, false
	}
	return tr, true
}

// traceLookup resolves {id} as a 32-hex W3C trace ID or a numeric query ID.
func traceLookup(tr *sbqa.TraceRecorder, id string) (sbqa.TraceView, bool) {
	if len(id) == 32 {
		return tr.TraceByID(id)
	}
	n, err := strconv.ParseInt(id, 10, 64)
	if err != nil {
		return sbqa.TraceView{}, false
	}
	return tr.TraceByQuery(sbqa.QueryID(n))
}

func (g *gateway) handleQueryTrace(w http.ResponseWriter, r *http.Request) {
	tr, ok := g.requireTracer(w)
	if !ok {
		return
	}
	id := r.PathValue("id")
	v, found := traceLookup(tr, id)
	if !found {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no trace for %q (unsampled, evicted from the ring, or never submitted)", id))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (g *gateway) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	tr, ok := g.requireTracer(w)
	if !ok {
		return
	}
	var minNS int64
	if s := r.URL.Query().Get("min_ms"); s != "" {
		ms, err := strconv.ParseFloat(s, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q", s))
			return
		}
		minNS = int64(ms * 1e6)
	}
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", s))
			return
		}
		limit = n
	}
	traces := tr.Slow(minNS, limit)
	if traces == nil {
		traces = []sbqa.TraceView{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(traces),
		"stats":  tr.StatsSnapshot(),
		"traces": traces,
	})
}

func (g *gateway) handleDebugExplain(w http.ResponseWriter, r *http.Request) {
	tr, ok := g.requireTracer(w)
	if !ok {
		return
	}
	id := r.PathValue("id")
	v, found := traceLookup(tr, id)
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for %q", id))
		return
	}
	if v.Explain == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("trace for %q carries no explain record (rejected before scoring, or still in flight)", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query_id": v.QueryID,
		"trace_id": v.TraceID,
		"status":   v.Status,
		"explain":  v.Explain,
	})
}
