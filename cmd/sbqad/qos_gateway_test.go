package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sbqa"
)

// qosGateway builds a gateway + test server with the given QoS spec and a
// registered worker/consumer pair, ready to take submissions.
func qosGateway(t *testing.T, spec sbqa.QoSSpec) (*gateway, *httptest.Server) {
	t.Helper()
	gw, err := newGateway(
		sbqa.WithWindow(20),
		sbqa.WithConcurrency(1),
		sbqa.WithQoS(spec),
		sbqa.WithAllocatorFactory(func(shard int) sbqa.Allocator {
			return sbqa.NewSbQA(sbqa.SbQAConfig{
				KnBest: sbqa.KnBestParams{K: 4, Kn: 2},
				Seed:   uint64(shard) + 1,
			})
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.close)
	srv := httptest.NewServer(gw.handler())
	t.Cleanup(srv.Close)
	postJSON(t, srv.URL+"/v1/workers", workerRequest{ID: 0, Capacity: 1000, QueueCap: 64, Intention: 0.5}, nil)
	postJSON(t, srv.URL+"/v1/consumers", consumerRequest{ID: 0, Intention: 0.8}, nil)
	return gw, srv
}

// TestGatewayAdmission429 pins the rate-limit regression surface: an
// over-limit consumer gets 429 with the structured body and a Retry-After
// header, the rejection is counted in /v1/stats and /v1/metrics, and a
// policy PUT that raises the rate re-admits immediately.
func TestGatewayAdmission429(t *testing.T) {
	spec := sbqa.DefaultQoSSpec()
	spec.ConsumerRate = 0.001 // one query per ~17 min: the second submit must reject
	spec.ConsumerBurst = 1
	_, srv := qosGateway(t, spec)

	var qr queryResponse
	postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "allocation"}, &qr)
	if qr.Error != "" {
		t.Fatalf("first submit rejected: %s", qr.Error)
	}

	var rej rejectJSON
	resp := postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "allocation"}, &rej)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status = %d, want 429", resp.StatusCode)
	}
	if rej.Error != "rate_limited" || rej.Scope != "consumer" {
		t.Fatalf("429 body = %+v, want error=rate_limited scope=consumer", rej)
	}
	if rej.RetryAfterMS <= 0 {
		t.Fatalf("429 body retry_after_ms = %v, want > 0", rej.RetryAfterMS)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header = %q, want a positive number of seconds", ra)
	}

	var st statsResponse
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.AdmissionRejected != 1 {
		t.Fatalf("stats admission_rejected = %d, want 1", st.AdmissionRejected)
	}
	metrics := getText(t, srv.URL+"/v1/metrics")
	if !strings.Contains(metrics, "sbqa_admission_rejected_total 1") {
		t.Fatalf("metrics missing sbqa_admission_rejected_total 1:\n%s", metrics)
	}

	// Hot-swap: a policy with a permissive qos block re-admits at once.
	relaxed := sbqa.DefaultQoSSpec()
	relaxed.ConsumerRate = 1e6
	putPolicy(t, srv.URL, sbqa.PolicySpec{Kind: "sbqa", K: 4, Kn: 2, Seed: 1, QoS: &relaxed})
	var qr2 queryResponse
	if resp := postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "allocation"}, &qr2); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-relax submit status = %d, want 200", resp.StatusCode)
	}
}

// TestGatewayShed503 pins the shed regression surface: a browned-out class
// answers 503 with the structured shed body on both the waiting and the
// wait=none paths, the shed appears on the SSE stream, and the per-class
// shed counter reaches /v1/metrics.
func TestGatewayShed503(t *testing.T) {
	gw, srv := qosGateway(t, sbqa.DefaultQoSSpec())
	events, closeSSE := openSSE(t, srv.URL+"/v1/events")
	defer closeSSE()

	// Brown out the bottom class (background) directly — the tuner's move,
	// forced here for determinism.
	gw.eng.SetBrownout(1)

	var rej rejectJSON
	resp := postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "allocation", QoS: "background"}, &rej)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submit status = %d, want 503", resp.StatusCode)
	}
	if rej.Error != "shed" || rej.Class != "background" || rej.Reason != "brownout" {
		t.Fatalf("503 body = %+v, want error=shed class=background reason=brownout", rej)
	}
	awaitEvent(t, events, "shed", func(data string) bool {
		return strings.Contains(data, `"class":"background"`) && strings.Contains(data, `"reason":"brownout"`)
	})

	// wait=none must not answer a hollow 202 for a query already shed.
	var rej2 rejectJSON
	resp = postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "none", QoS: "background"}, &rej2)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wait=none shed status = %d, want 503", resp.StatusCode)
	}
	if rej2.Error != "shed" {
		t.Fatalf("wait=none 503 body = %+v, want error=shed", rej2)
	}

	// The interactive class is untouched by brownout level 1.
	var qr queryResponse
	if resp := postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "allocation", QoS: "interactive"}, &qr); resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive submit status = %d, want 200", resp.StatusCode)
	}

	var st statsResponse
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.Brownout != 1 {
		t.Fatalf("stats brownout = %d, want 1", st.Brownout)
	}
	metrics := getText(t, srv.URL+"/v1/metrics")
	if !strings.Contains(metrics, `sbqa_shed_total{class="background",reason="brownout"} 2`) {
		t.Fatalf("metrics missing background brownout shed count:\n%s", metrics)
	}
	if !strings.Contains(metrics, "sbqa_brownout_level 1") {
		t.Fatalf("metrics missing sbqa_brownout_level 1:\n%s", metrics)
	}
	if !strings.Contains(metrics, "sbqa_queue_enqueued_total") || !strings.Contains(metrics, "sbqa_shard_queue_high_water") {
		t.Fatalf("metrics missing queue ledger families:\n%s", metrics)
	}
}

// getText fetches url as plain text.
func getText(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// putPolicy PUTs a policy spec and requires acceptance.
func putPolicy(t testing.TB, base string, spec sbqa.PolicySpec) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/policy", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy put status = %d", resp.StatusCode)
	}
}
