package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sbqa"
)

// gatewayWithDeadline builds a single-shard gateway with a per-participant
// deadline suitable for webhook tests.
func gatewayWithDeadline(t *testing.T, deadline time.Duration) (*gateway, *httptest.Server) {
	t.Helper()
	gw, err := newGateway(
		sbqa.WithWindow(50),
		sbqa.WithAllocator(sbqa.NewSbQA(sbqa.SbQAConfig{KnBest: sbqa.KnBestParams{K: 4, Kn: 2}})),
		sbqa.WithParticipantDeadline(deadline),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.close)
	srv := httptest.NewServer(gw.handler())
	t.Cleanup(srv.Close)
	return gw, srv
}

// TestRemoteParticipantsEndToEnd: a consumer and a worker both answer
// intention webhooks; the daemon gathers CI_q and PI_q over HTTP during
// mediation and the query executes on the worker's local executor.
func TestRemoteParticipantsEndToEnd(t *testing.T) {
	var consumerCalls, workerCalls atomic.Int64
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req intentionWebhookRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.URL.Path {
		case "/consumer":
			consumerCalls.Add(1)
			resp := consumerWebhookResponse{Intentions: make([]float64, len(req.Candidates))}
			for i := range resp.Intentions {
				resp.Intentions[i] = 0.9
			}
			json.NewEncoder(w).Encode(resp)
		case "/worker":
			workerCalls.Add(1)
			json.NewEncoder(w).Encode(workerWebhookResponse{Intention: 0.7})
		default:
			http.NotFound(w, r)
		}
	}))
	defer hook.Close()

	_, srv := gatewayWithDeadline(t, 2*time.Second)
	postJSON(t, srv.URL+"/v1/workers", workerRequest{
		ID: 1, Capacity: 1000, QueueCap: 16, IntentionURL: hook.URL + "/worker",
	}, nil)
	postJSON(t, srv.URL+"/v1/consumers", consumerRequest{
		ID: 0, IntentionURL: hook.URL + "/consumer",
	}, nil)

	var qr queryResponse
	postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "results"}, &qr)
	if qr.Error != "" {
		t.Fatalf("submit error: %s", qr.Error)
	}
	if len(qr.Selected) != 1 || qr.Selected[0] != 1 {
		t.Fatalf("selected %v, want the remote worker", qr.Selected)
	}
	if len(qr.Results) != 1 {
		t.Fatalf("results %v, want one local execution", qr.Results)
	}
	if consumerCalls.Load() == 0 || workerCalls.Load() == 0 {
		t.Errorf("webhooks consulted consumer=%d worker=%d times, want both > 0",
			consumerCalls.Load(), workerCalls.Load())
	}
}

// TestSlowWebhookImputedWithDeadline is the daemon-level acceptance
// scenario: a worker whose intention webhook stalls far past the configured
// per-participant deadline. The mediation completes within the deadline
// (plus margin), the missing PI_q is imputed from registry state, a typed
// "imputation" event reaches the SSE stream, and the stats counters record
// the timeout.
func TestSlowWebhookImputedWithDeadline(t *testing.T) {
	const deadline = 75 * time.Millisecond
	stall := make(chan struct{})
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body: the server only notices a client abort (the
		// fan-out's deadline firing) through reads.
		io.Copy(io.Discard, r.Body)
		if r.URL.Path == "/slow" {
			select {
			case <-stall:
			case <-r.Context().Done():
			}
			return
		}
		json.NewEncoder(w).Encode(workerWebhookResponse{Intention: 0.6})
	}))
	defer hook.Close()
	// Closed before hook.Close (defers are LIFO) so a handler still parked
	// on stall cannot wedge the webhook server's shutdown.
	defer close(stall)

	_, srv := gatewayWithDeadline(t, deadline)
	events, closeSSE := openSSE(t, srv.URL+"/v1/events")
	defer closeSSE()

	postJSON(t, srv.URL+"/v1/workers", workerRequest{
		ID: 1, Capacity: 1000, QueueCap: 16, IntentionURL: hook.URL + "/slow",
	}, nil)
	postJSON(t, srv.URL+"/v1/workers", workerRequest{
		ID: 2, Capacity: 1000, QueueCap: 16, IntentionURL: hook.URL + "/fast",
	}, nil)
	postJSON(t, srv.URL+"/v1/consumers", consumerRequest{ID: 0, Intention: 0.8}, nil)

	start := time.Now()
	var qr queryResponse
	postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 2, Work: 0.5, Wait: "allocation"}, &qr)
	elapsed := time.Since(start)
	if qr.Error != "" {
		t.Fatalf("submit error: %s", qr.Error)
	}
	if elapsed > deadline+2*time.Second {
		t.Fatalf("allocation took %v despite the %v participant deadline", elapsed, deadline)
	}
	if len(qr.Selected) != 2 {
		t.Fatalf("selected %v, want both workers (silent one imputed, not dropped)", qr.Selected)
	}

	// The typed imputation event names the silent worker and the timeout.
	ev := awaitEvent(t, events, "imputation", func(data string) bool {
		return strings.Contains(data, fmt.Sprintf(`"query_id":%d`, qr.QueryID))
	})
	var im imputationEvent
	if err := json.Unmarshal([]byte(ev.data), &im); err != nil {
		t.Fatal(err)
	}
	if im.Provider != 1 || !im.Timeout {
		t.Errorf("imputation event %+v, want provider 1 with timeout=true", im)
	}

	// Stats counted it.
	var st statsResponse
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	var imputations, timeouts uint64
	for _, sh := range st.Shards {
		imputations += sh.Imputations
		timeouts += sh.IntentionTimeouts
	}
	if imputations == 0 || timeouts == 0 {
		t.Errorf("stats imputations=%d intention_timeouts=%d, want both > 0", imputations, timeouts)
	}
}

// TestHealthzAndGracefulShutdown: the daemon answers /v1/healthz while
// serving, and a context cancel (the SIGTERM path) shuts it down cleanly —
// serve returns nil and the listener stops accepting.
func TestHealthzAndGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, ln,
			sbqa.WithWindow(10),
			sbqa.WithAllocator(sbqa.NewSbQA(sbqa.SbQAConfig{})),
		)
	}()

	// Healthz answers while serving (retry briefly while the server spins
	// up).
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(base + "/v1/healthz")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("healthz never became reachable: %v", err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	// Attach an SSE subscriber: graceful shutdown must end the stream
	// promptly rather than waiting out the whole shutdown grace behind it.
	events, closeSSE := openSSE(t, base+"/v1/events")
	defer closeSSE()

	// SIGTERM path: cancel the context; serve must return cleanly, well
	// inside the grace period even with the subscriber connected.
	cancel()
	start := time.Now()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v on graceful shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not return after context cancel")
	}
	if elapsed := time.Since(start); elapsed > shutdownGrace/2 {
		t.Errorf("shutdown took %v with an SSE subscriber attached; the stream must end at shutdown", elapsed)
	}
	// The subscriber's stream terminated.
	select {
	case _, open := <-events:
		if open {
			// Drain any buffered event; the channel must close shortly.
			for range events {
			}
		}
	case <-time.After(5 * time.Second):
		t.Error("SSE stream still open after shutdown")
	}
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestHubSlowSubscriberNeverBlocks documents and enforces the SSE hub's
// drop/buffer policy: each subscriber gets a subscriberBuffer-deep backlog;
// once it is full, further events are dropped for that subscriber and
// publish returns immediately — a stalled SSE client can never block the
// engine's observer callbacks.
func TestHubSlowSubscriberNeverBlocks(t *testing.T) {
	h := newHub()
	ch, unsubscribe := h.subscribe()
	defer unsubscribe()

	const extra = 100
	start := time.Now()
	for i := 0; i < subscriberBuffer+extra; i++ {
		h.publish("allocation", i)
	}
	elapsed := time.Since(start)
	// Publishing past the buffer must not block: generous bound, but a
	// blocking publish would hang forever, not just run slowly.
	if elapsed > 2*time.Second {
		t.Fatalf("publishing %d events took %v; publish must never block", subscriberBuffer+extra, elapsed)
	}
	if n := len(ch); n != subscriberBuffer {
		t.Fatalf("subscriber backlog = %d, want exactly subscriberBuffer (%d) with the rest dropped", n, subscriberBuffer)
	}
	// The retained events are the oldest; the dropped ones are the newest.
	first := <-ch
	if first.data.(int) != 0 {
		t.Errorf("first buffered event = %v, want 0 (drop-newest policy)", first.data)
	}
	// A draining subscriber keeps receiving.
	h.publish("allocation", "fresh")
	found := false
	for len(ch) > 0 {
		if ev := <-ch; ev.data == "fresh" {
			found = true
		}
	}
	if !found {
		t.Error("event published after draining never arrived")
	}
}
