// Command sbqad runs the SbQA mediation engine behind an HTTP/JSON gateway
// — the network-facing embedding of the asynchronous Engine API.
//
// Endpoints (all JSON):
//
//	POST   /v1/consumers      register a consumer {id, intention, prefer_idle}
//	POST   /v1/workers        start+register a worker {id, capacity, queue_cap, intention, classes}
//	DELETE /v1/workers/{id}   stop and unregister a worker
//	POST   /v1/queries        submit {consumer, class, n, work, wait:none|allocation|results}
//	GET    /v1/stats          engine counters + per-participant satisfaction
//	GET    /v1/events         server-sent events: allocation, rejection,
//	                          dispatch_failure, registered, departed,
//	                          result, satisfaction
//
// Example session:
//
//	sbqad -addr :8080 -shards 4 &
//	curl -XPOST localhost:8080/v1/workers -d '{"id":1,"capacity":100,"intention":0.5}'
//	curl -XPOST localhost:8080/v1/consumers -d '{"id":0,"intention":0.6,"prefer_idle":true}'
//	curl -XPOST localhost:8080/v1/queries -d '{"consumer":0,"n":1,"work":2,"wait":"results"}'
//	curl localhost:8080/v1/stats
//	curl -N localhost:8080/v1/events
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"sbqa"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 1, "mediator shards (distinct consumers mediate in parallel)")
		window   = flag.Int("window", 100, "satisfaction memory length k")
		k        = flag.Int("k", 20, "KnBest stage-1 sample size")
		kn       = flag.Int("kn", 10, "KnBest stage-2 keep size")
		seed     = flag.Uint64("seed", 1, "base allocator seed (shard i uses seed+i)")
		queue    = flag.Int("queue-depth", 1024, "per-shard async submission queue bound")
		snapshot = flag.Duration("snapshot", 10*time.Second, "satisfaction snapshot interval on the event stream (0 disables)")
	)
	flag.Parse()

	gw, err := newGateway(
		sbqa.WithWindow(*window),
		sbqa.WithConcurrency(*shards),
		sbqa.WithAllocatorFactory(func(shard int) sbqa.Allocator {
			return sbqa.NewSbQA(sbqa.SbQAConfig{
				KnBest: sbqa.KnBestParams{K: *k, Kn: *kn},
				Seed:   *seed + uint64(shard),
			})
		}),
		sbqa.WithQueueDepth(*queue),
		sbqa.WithSnapshotInterval(*snapshot),
	)
	if err != nil {
		log.Fatalf("sbqad: %v", err)
	}
	defer gw.close()

	fmt.Printf("sbqad: %d shard(s), window %d, KnBest(%d,%d), listening on %s\n",
		*shards, *window, *k, *kn, *addr)
	log.Fatal(http.ListenAndServe(*addr, gw.handler()))
}
