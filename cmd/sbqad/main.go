// Command sbqad runs the SbQA mediation engine behind an HTTP/JSON gateway
// — the network-facing embedding of the asynchronous Engine API.
//
// Endpoints (all JSON):
//
//	POST   /v1/consumers      register a consumer {id, intention, prefer_idle,
//	                          intention_url}; with intention_url the daemon
//	                          gathers CI_q from the webhook per mediation
//	POST   /v1/workers        start+register a worker {id, capacity, queue_cap,
//	                          intention, classes, intention_url}; with
//	                          intention_url PI_q comes from the webhook
//	DELETE /v1/workers/{id}   stop and unregister a worker
//	POST   /v1/queries        submit {consumer, class, n, work, wait:none|allocation|results}
//	GET    /v1/stats          engine counters (incl. imputations/timeouts) +
//	                          per-participant satisfaction
//	GET    /v1/events         server-sent events: allocation, rejection,
//	                          dispatch_failure, registered, departed,
//	                          result, satisfaction, imputation
//	GET    /v1/healthz        liveness + readiness summary
//
// Remote participants answer intention webhooks under the per-participant
// deadline (-participant-deadline); a webhook that misses it is imputed from
// the participant's satisfaction registry state and the mediation proceeds.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting
// HTTP requests, drains in-flight tickets via Engine.Close, stops its
// workers, and exits.
//
// Example session:
//
//	sbqad -addr :8080 -shards 4 &
//	curl -XPOST localhost:8080/v1/workers -d '{"id":1,"capacity":100,"intention":0.5}'
//	curl -XPOST localhost:8080/v1/workers -d '{"id":2,"capacity":100,"intention_url":"http://worker2.local/intent"}'
//	curl -XPOST localhost:8080/v1/consumers -d '{"id":0,"intention":0.6,"prefer_idle":true}'
//	curl -XPOST localhost:8080/v1/queries -d '{"consumer":0,"n":1,"work":2,"wait":"results"}'
//	curl localhost:8080/v1/stats
//	curl -N localhost:8080/v1/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"sbqa"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 1, "mediator shards (distinct consumers mediate in parallel)")
		window   = flag.Int("window", 100, "satisfaction memory length k")
		k        = flag.Int("k", 20, "KnBest stage-1 sample size")
		kn       = flag.Int("kn", 10, "KnBest stage-2 keep size")
		seed     = flag.Uint64("seed", 1, "base allocator seed (shard i uses seed+i)")
		queue    = flag.Int("queue-depth", 1024, "per-shard async submission queue bound")
		snapshot = flag.Duration("snapshot", 10*time.Second, "satisfaction snapshot interval on the event stream (0 disables)")
		deadline = flag.Duration("participant-deadline", 250*time.Millisecond,
			"per-participant bound on remote intention webhooks (0 = unbounded); late participants are imputed")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr,
		sbqa.WithWindow(*window),
		sbqa.WithConcurrency(*shards),
		sbqa.WithAllocatorFactory(func(shard int) sbqa.Allocator {
			return sbqa.NewSbQA(sbqa.SbQAConfig{
				KnBest: sbqa.KnBestParams{K: *k, Kn: *kn},
				Seed:   *seed + uint64(shard),
			})
		}),
		sbqa.WithQueueDepth(*queue),
		sbqa.WithSnapshotInterval(*snapshot),
		sbqa.WithParticipantDeadline(*deadline),
	); err != nil {
		log.Fatalf("sbqad: %v", err)
	}
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// HTTP requests before closing their connections.
const shutdownGrace = 10 * time.Second

// run serves the gateway on addr until ctx is done, then shuts down
// gracefully (see serve).
func run(ctx context.Context, addr string, opts ...sbqa.EngineOption) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serve(ctx, ln, opts...)
}

// serve runs the gateway on ln until ctx is done, then shuts down
// gracefully: stop accepting requests, drain in-flight tickets via
// Engine.Close, stop the gateway's workers, and return. Factored out of
// main so the shutdown path is testable with an ephemeral listener and a
// plain context cancel.
func serve(ctx context.Context, ln net.Listener, opts ...sbqa.EngineOption) error {
	gw, err := newGateway(opts...)
	if err != nil {
		ln.Close()
		return err
	}
	defer gw.close()

	srv := &http.Server{Handler: gw.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("sbqad: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("sbqad: shutting down (draining in-flight tickets)")
	// End the SSE streams first: Shutdown waits for active handlers, and an
	// attached events subscriber would otherwise hold the server open for
	// the whole grace period.
	gw.beginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// gw.close (deferred) runs Engine.Close — shard loops finish the
	// already-queued submissions before the engine stops — then closes the
	// workers.
	return nil
}
