// Command sbqad runs the SbQA mediation engine behind an HTTP/JSON gateway
// — the network-facing embedding of the asynchronous Engine API.
//
// Endpoints (all JSON):
//
//	POST   /v1/consumers      register a consumer {id, intention, prefer_idle,
//	                          intention_url}; with intention_url the daemon
//	                          gathers CI_q from the webhook per mediation
//	POST   /v1/workers        start+register a worker {id, capacity, queue_cap,
//	                          intention, classes, intention_url}; with
//	                          intention_url PI_q comes from the webhook
//	DELETE /v1/workers/{id}   stop and unregister a worker
//	POST   /v1/queries        submit {consumer, class, n, work, wait:none|allocation|results,
//	                          qos, deadline_ms}; qos names a service class,
//	                          deadline_ms sheds infeasible queries with 503;
//	                          token-bucket over-limit answers 429 + Retry-After
//	GET    /v1/policy         the running allocation policy + per-shard
//	                          generation adoption
//	PUT    /v1/policy         hot-reconfigure the engine to a new policy spec;
//	                          shards adopt it at their next mediation boundary
//	POST   /v1/policy/preview dry-run a candidate policy against a submitted
//	                          candidate set (no engine state touched)
//	GET    /v1/stats          engine counters (incl. imputations/timeouts,
//	                          policy generations, events_dropped, persistence) +
//	                          per-participant satisfaction
//	GET    /v1/metrics        the same counters in Prometheus text exposition
//	                          format (scrape this, not the JSON)
//	GET    /v1/events         server-sent events: allocation, rejection,
//	                          dispatch_failure, registered, departed,
//	                          result, satisfaction, imputation, policy_change,
//	                          peer_change, shed; ?consumer=N routes the
//	                          subscription to the consumer's owning node in
//	                          cluster mode
//	GET    /v1/healthz        liveness: 200 as soon as HTTP serves, even
//	                          mid-restore
//	GET    /v1/readyz         readiness: 503 until the -state-dir restore and
//	                          journal replay complete, then 200 + restore summary
//	GET    /v1/cluster        cluster mode: ring membership, peer health, and
//	                          replication positions as seen by this node
//	GET    /v1/queries/{id}/trace  one sampled query's full trace: per-stage
//	                          spans plus the allocation explain record
//	                          (needs -trace-sample > 0)
//	GET    /v1/debug/traces   the flight recorder's slow-query log
//	                          (?min_ms= filters, ?limit= caps)
//	GET    /v1/debug/explain/{id}  just the explain record: the ranked
//	                          per-provider score breakdown of one mediation
//	GET    /debug/pprof/      net/http/pprof, only with -debug-pprof
//
// With -node-id and -peers the daemon joins a static mediation cluster: a
// consistent-hash ring over consumer IDs assigns each consumer an owning
// node, requests landing on a non-owner are transparently forwarded
// (internal endpoints POST /v1/internal/forward[/consumers]), and with
// -state-dir each node ships its sealed satisfaction WAL segments to its
// ring followers (POST /v1/internal/segments) so a node failure loses at
// most the unsynced journal tail. A request whose owner is down answers a
// typed 503 {"code":"peer_down"}; a forwarded request that lands on a
// node that still disagrees about ownership answers {"code":"not_owner"}
// rather than risking a forwarding loop.
//
// Remote participants answer intention webhooks under the per-participant
// deadline (-participant-deadline); a webhook that misses it is imputed from
// the participant's satisfaction registry state and the mediation proceeds.
//
// With -state-dir the daemon's adaptation state is durable: on boot it
// restores the satisfaction memory, policy generation, and allocator
// sampling streams persisted there (replaying the journal tail after a
// crash), and on SIGINT/SIGTERM the graceful shutdown drains in-flight
// tickets via Engine.Close and flushes a final snapshot, so the next boot
// resumes warm. Workers and consumers are runtime objects — re-register
// them after a restart; their memory is already there.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting
// HTTP requests, drains in-flight tickets via Engine.Close (flushing the
// state snapshot when -state-dir is set), stops its workers, and exits.
//
// Example session:
//
//	sbqad -addr :8080 -shards 4 &
//	curl -XPOST localhost:8080/v1/workers -d '{"id":1,"capacity":100,"intention":0.5}'
//	curl -XPOST localhost:8080/v1/workers -d '{"id":2,"capacity":100,"intention_url":"http://worker2.local/intent"}'
//	curl -XPOST localhost:8080/v1/consumers -d '{"id":0,"intention":0.6,"prefer_idle":true}'
//	curl -XPOST localhost:8080/v1/queries -d '{"consumer":0,"n":1,"work":2,"wait":"results"}'
//	curl localhost:8080/v1/stats
//	curl -N localhost:8080/v1/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sbqa"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 1, "mediator shards (distinct consumers mediate in parallel)")
		window   = flag.Int("window", 100, "satisfaction memory length k")
		k        = flag.Int("k", 20, "KnBest stage-1 sample size")
		kn       = flag.Int("kn", 10, "KnBest stage-2 keep size")
		seed     = flag.Uint64("seed", 1, "base allocator seed (shard i uses seed+i)")
		queue    = flag.Int("queue-depth", 1024, "per-shard async submission queue bound")
		snapshot = flag.Duration("snapshot", 10*time.Second, "satisfaction snapshot interval on the event stream (0 disables)")
		deadline = flag.Duration("participant-deadline", 250*time.Millisecond,
			"per-participant bound on remote intention webhooks (0 = unbounded); late participants are imputed")
		policyPath = flag.String("policy", "",
			"path to a JSON allocation-policy spec; overrides -k/-kn/-seed (see PUT /v1/policy for the schema)")
		autotune = flag.Bool("autotune", false,
			"run the autonomic policy tuner (widens kn under consumer starvation, rebalances fixed ω); requires -snapshot > 0")
		stateDir = flag.String("state-dir", "",
			"directory for durable adaptation state (satisfaction memory, policy generation, sampling streams); restored on boot, flushed on SIGTERM; empty disables persistence")
		stateSyncEvery = flag.Int("state-sync-every", 0,
			"journal fsync cadence with -state-dir: one fsync per N mediation outcomes (1 = every outcome, the crash-loss bound; 0 = library default 64)")
		nodeID = flag.String("node-id", "",
			"this node's cluster identity; empty runs the classic single-node daemon")
		peersFlag = flag.String("peers", "",
			"remote cluster members as comma-separated id=baseURL pairs (e.g. b=http://10.0.0.2:8080); requires -node-id")
		heartbeatInterval = flag.Duration("heartbeat-interval", time.Second,
			"cluster peer probe cadence")
		heartbeatTimeout = flag.Duration("heartbeat-timeout", 0,
			"per-probe timeout (0 = half the heartbeat interval)")
		replicateInterval = flag.Duration("replicate-interval", 500*time.Millisecond,
			"WAL segment shipping cadence to ring followers (needs -state-dir)")
		qosEnabled = flag.Bool("qos", false,
			"enable the default QoS classes (interactive/batch/background) with weighted-fair scheduling and deadline-aware load shedding; a policy qos block overrides")
		qosConsumerRate = flag.Float64("qos-consumer-rate", 0,
			"per-consumer token-bucket admission rate at the gateway in queries/sec (0 = unlimited; implies -qos); over-limit submissions answer 429 + Retry-After")
		qosConsumerBurst = flag.Float64("qos-consumer-burst", 0,
			"per-consumer admission burst (0 = rate-derived default)")
		qosMaxDepth = flag.Int("qos-max-depth", 0,
			"per-class queue bound with -qos: past it submissions shed with a 503 instead of blocking (0 = blocking backpressure at -queue-depth)")
		traceSample = flag.Float64("trace-sample", 0,
			"fraction of queries to trace end-to-end (deterministic 1-in-N; 0 disables local sampling, forwarded sampled traces still record); traces land in the flight recorder at GET /v1/debug/traces")
		traceBuffer = flag.Int("trace-buffer", 256,
			"flight-recorder ring capacity in finished traces")
		debugPprof = flag.Bool("debug-pprof", false,
			"mount net/http/pprof under /debug/pprof/ (off by default; exposes runtime internals)")
	)
	flag.Parse()
	enablePprof = *debugPprof

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		log.Fatalf("sbqad: -peers: %v", err)
	}
	if len(peers) > 0 && *nodeID == "" {
		log.Fatal("sbqad: -peers requires -node-id")
	}
	var cs *clusterSettings
	if *nodeID != "" {
		cs = &clusterSettings{
			nodeID:            *nodeID,
			peers:             peers,
			heartbeatInterval: *heartbeatInterval,
			heartbeatTimeout:  *heartbeatTimeout,
			replicateInterval: *replicateInterval,
		}
	}

	// The daemon always runs a declarative policy: the tuning flags build
	// the default SbQA spec, -policy replaces it wholesale. Either way the
	// running policy is inspectable at GET /v1/policy and hot-swappable at
	// PUT /v1/policy.
	spec := sbqa.PolicySpec{
		Name: "boot",
		Kind: sbqa.PolicySbQA,
		K:    *k,
		Kn:   *kn,
		Seed: *seed,
	}
	if *policyPath != "" {
		data, err := os.ReadFile(*policyPath)
		if err != nil {
			log.Fatalf("sbqad: -policy: %v", err)
		}
		if spec, err = sbqa.ParsePolicy(data); err != nil {
			log.Fatalf("sbqad: -policy: %v", err)
		}
	}
	// The -qos flags build the default class ladder when the policy carries
	// no qos block of its own (a -policy file's block wins; so does any
	// later PUT /v1/policy with one).
	if spec.QoS == nil && (*qosEnabled || *qosConsumerRate > 0) {
		qs := sbqa.DefaultQoSSpec()
		qs.ConsumerRate = *qosConsumerRate
		qs.ConsumerBurst = *qosConsumerBurst
		if *qosMaxDepth > 0 {
			for i := range qs.Classes {
				qs.Classes[i].MaxQueueDepth = *qosMaxDepth
			}
		}
		spec.QoS = &qs
	}

	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		log.Fatalf("sbqad: -policy: %v", err)
	}

	// A deadline in the policy spec wins over the flag's default; an
	// explicit -participant-deadline wins over the spec (same precedence a
	// later PUT /v1/policy applies). The spec's deadline is stripped when
	// the flag is explicit so that `-participant-deadline 0` (unbounded)
	// also overrides — the engine treats a zero spec deadline as "inherit".
	// This must happen before WithPolicy captures the spec.
	deadlineFlagSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "participant-deadline" {
			deadlineFlagSet = true
		}
	})
	if deadlineFlagSet {
		spec.ParticipantDeadline = 0
	}
	opts := []sbqa.EngineOption{
		sbqa.WithWindow(*window),
		sbqa.WithConcurrency(*shards),
		sbqa.WithPolicy(spec),
		sbqa.WithQueueDepth(*queue),
		sbqa.WithSnapshotInterval(*snapshot),
		// The recorder always exists so forwarded sampled traces record on
		// this node even with -trace-sample 0; unsampled queries pay one
		// branch per pipeline stage and zero allocations.
		sbqa.WithTracing(*traceSample, *traceBuffer),
	}
	if deadlineFlagSet || spec.ParticipantDeadline == 0 {
		opts = append(opts, sbqa.WithParticipantDeadline(*deadline))
	}
	if *autotune {
		opts = append(opts, sbqa.WithTuner(sbqa.TunerConfig{Logf: log.Printf}))
	}
	if *stateDir != "" {
		var popts []sbqa.PersistOption
		if *stateSyncEvery > 0 {
			popts = append(popts, sbqa.PersistSyncEvery(*stateSyncEvery))
		}
		opts = append(opts, sbqa.WithPersistence(*stateDir, popts...))
		if cs != nil {
			cs.stateDir = *stateDir
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, cs, opts...); err != nil {
		log.Fatalf("sbqad: %v", err)
	}
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// HTTP requests before closing their connections.
const shutdownGrace = 10 * time.Second

// run serves the gateway on addr until ctx is done, then shuts down
// gracefully (see serve). cs is nil outside cluster mode.
func run(ctx context.Context, addr string, cs *clusterSettings, opts ...sbqa.EngineOption) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveWithCluster(ctx, ln, cs, opts...)
}

// serve runs the gateway on ln until ctx is done, then shuts down
// gracefully: stop accepting requests, drain in-flight tickets via
// Engine.Close (which, with -state-dir, flushes the final state snapshot),
// stop the gateway's workers, and return. Factored out of main so the
// shutdown path is testable with an ephemeral listener and a plain context
// cancel.
//
// The listener starts serving BEFORE the engine is built: /v1/healthz
// answers immediately while a -state-dir restore replays its journal, and
// /v1/readyz (plus every engine-backed endpoint) answers 503 until the
// restore completes.
func serve(ctx context.Context, ln net.Listener, opts ...sbqa.EngineOption) error {
	return serveWithCluster(ctx, ln, nil, opts...)
}

// serveWithCluster is serve plus cluster membership: with a non-nil cs
// the gateway builds and starts a cluster node (ring, heartbeats, WAL
// replication, submit guard) between engine construction and the ready
// flip. With cs == nil the daemon is byte-for-byte the single-node
// gateway — no node is constructed, no guard installed.
func serveWithCluster(ctx context.Context, ln net.Listener, cs *clusterSettings, opts ...sbqa.EngineOption) error {
	gw := newGatewayShell()
	defer gw.close()

	srv := &http.Server{Handler: gw.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("sbqad: listening on %s\n", ln.Addr())
	if err := gw.initWithCluster(cs, opts...); err != nil {
		srv.Close()
		<-serveErr
		return err
	}
	fmt.Println("sbqad: ready")

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("sbqad: shutting down (draining in-flight tickets)")
	// End the SSE streams first: Shutdown waits for active handlers, and an
	// attached events subscriber would otherwise hold the server open for
	// the whole grace period.
	gw.beginShutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// gw.close (deferred) runs Engine.Close — shard loops finish the
	// already-queued submissions before the engine stops — then closes the
	// workers.
	return nil
}
