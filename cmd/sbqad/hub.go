package main

import (
	"strconv"
	"sync"
	"sync/atomic"

	"sbqa"
)

// sseEvent is one event on the gateway's stream: a kind tag and a
// JSON-serializable payload.
type sseEvent struct {
	kind string
	data any
}

// hub fans engine events out to the SSE subscribers.
//
// Drop/buffer policy: each subscriber owns a subscriberBuffer-deep channel.
// publish is strictly non-blocking — when a subscriber's buffer is full the
// event is dropped *for that subscriber* (newest dropped, buffered backlog
// kept) and every other subscriber still receives it. A stalled SSE client
// can therefore never stall the engine's observer callbacks, which run
// synchronously on the mediating goroutines. TestHubSlowSubscriberNeverBlocks
// enforces this. Drops are not silent: every per-subscriber drop increments
// the dropped counter, surfaced as events_dropped in GET /v1/stats, so an
// operator can tell a quiet stream from a lossy one.
type hub struct {
	mu      sync.Mutex
	subs    map[chan sseEvent]struct{}
	dropped atomic.Uint64
}

func newHub() *hub {
	return &hub{subs: make(map[chan sseEvent]struct{})}
}

// subscriberBuffer is each SSE connection's event backlog; past it, events
// are dropped for that subscriber.
const subscriberBuffer = 256

func (h *hub) subscribe() (<-chan sseEvent, func()) {
	ch := make(chan sseEvent, subscriberBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
}

func (h *hub) publish(kind string, data any) {
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- sseEvent{kind: kind, data: data}:
		default: // slow subscriber: drop, but count
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// droppedEvents reports the lifetime count of per-subscriber drops.
func (h *hub) droppedEvents() uint64 { return h.dropped.Load() }

// allocationEvent summarizes one successful mediation for the stream.
type allocationEvent struct {
	QueryID    int64             `json:"query_id"`
	Consumer   int               `json:"consumer"`
	Selected   []sbqa.ProviderID `json:"selected"`
	Candidates int               `json:"candidates"`
}

type rejectionEvent struct {
	QueryID  int64  `json:"query_id"`
	Consumer int    `json:"consumer"`
	Reason   string `json:"reason"`
}

type dispatchFailureEvent struct {
	QueryID int64  `json:"query_id"`
	Error   string `json:"error"`
}

type participantEvent struct {
	Kind string `json:"kind"` // "provider" | "consumer"
	ID   int    `json:"id"`
}

type satisfactionEvent struct {
	Time      float64            `json:"time"`
	Consumers map[string]float64 `json:"consumers"`
	Providers map[string]float64 `json:"providers"`
}

// imputationEvent reports a silent participant whose intention was imputed
// from registry state during one mediation's batched collection. Provider is
// -1 (model.NoProvider) when the silent party was the consumer.
type imputationEvent struct {
	QueryID  int64   `json:"query_id"`
	Consumer int     `json:"consumer"`
	Provider int     `json:"provider"`
	Timeout  bool    `json:"timeout"`
	Error    string  `json:"error"`
	Imputed  float64 `json:"imputed"`
}

// shedEvent reports one query rejected by admission control (deadline
// infeasible, class queue full, or brownout) on the stream.
type shedEvent struct {
	QueryID         int64   `json:"query_id"`
	Consumer        int     `json:"consumer"`
	Class           string  `json:"class"`
	Reason          string  `json:"reason"`
	QueueDepth      int     `json:"queue_depth"`
	EstimatedWaitMS float64 `json:"estimated_wait_ms"`
}

// policyChangeEvent reports an accepted policy generation on the stream.
type policyChangeEvent struct {
	Generation uint64  `json:"generation"`
	Name       string  `json:"name"`
	Kind       string  `json:"kind"`
	Time       float64 `json:"time"`
}

// peerChangeEvent reports a cluster peer's health transition on the
// stream (cluster mode only).
type peerChangeEvent struct {
	Node  string `json:"node"`
	Addr  string `json:"addr,omitempty"`
	From  string `json:"from"`
	To    string `json:"to"`
	Error string `json:"error,omitempty"`
}

// observer adapts the hub to the engine's Observer interface.
func (h *hub) observer() sbqa.Observer {
	return sbqa.ObserverFuncs{
		Allocation: func(a *sbqa.Allocation, candidates int) {
			h.publish("allocation", allocationEvent{
				QueryID:    int64(a.Query.ID),
				Consumer:   int(a.Query.Consumer),
				Selected:   append([]sbqa.ProviderID(nil), a.Selected...),
				Candidates: candidates,
			})
		},
		Rejection: func(q sbqa.Query, reason error) {
			h.publish("rejection", rejectionEvent{
				QueryID:  int64(q.ID),
				Consumer: int(q.Consumer),
				Reason:   reason.Error(),
			})
		},
		DispatchFailure: func(q sbqa.Query, _ *sbqa.Allocation, err error) {
			h.publish("dispatch_failure", dispatchFailureEvent{
				QueryID: int64(q.ID),
				Error:   err.Error(),
			})
		},
		ProviderRegistered: func(id sbqa.ProviderID) {
			h.publish("registered", participantEvent{Kind: "provider", ID: int(id)})
		},
		ProviderDeparted: func(id sbqa.ProviderID) {
			h.publish("departed", participantEvent{Kind: "provider", ID: int(id)})
		},
		ConsumerRegistered: func(id sbqa.ConsumerID) {
			h.publish("registered", participantEvent{Kind: "consumer", ID: int(id)})
		},
		ConsumerDeparted: func(id sbqa.ConsumerID) {
			h.publish("departed", participantEvent{Kind: "consumer", ID: int(id)})
		},
		IntentionImputed: func(im sbqa.Imputation) {
			errMsg := ""
			if im.Err != nil {
				errMsg = im.Err.Error()
			}
			h.publish("imputation", imputationEvent{
				QueryID:  int64(im.Query.ID),
				Consumer: int(im.Consumer),
				Provider: int(im.Provider),
				Timeout:  im.Timeout(),
				Error:    errMsg,
				Imputed:  float64(im.Imputed),
			})
		},
		Shed: func(s sbqa.ShedEvent) {
			h.publish("shed", shedEvent{
				QueryID:         int64(s.Query.ID),
				Consumer:        int(s.Query.Consumer),
				Class:           s.Class,
				Reason:          s.Reason,
				QueueDepth:      s.QueueDepth,
				EstimatedWaitMS: s.EstimatedWait * 1000,
			})
		},
		PolicyChange: func(pc sbqa.PolicyChange) {
			h.publish("policy_change", policyChangeEvent{
				Generation: pc.Generation,
				Name:       pc.Name,
				Kind:       pc.Kind,
				Time:       pc.Time,
			})
		},
		PeerChange: func(pc sbqa.PeerChange) {
			h.publish("peer_change", peerChangeEvent{
				Node:  pc.Node,
				Addr:  pc.Addr,
				From:  pc.From,
				To:    pc.To,
				Error: pc.Err,
			})
		},
		SatisfactionSnapshot: func(snap sbqa.SatisfactionSnapshot) {
			ev := satisfactionEvent{
				Time:      snap.Time,
				Consumers: make(map[string]float64, len(snap.Consumers)),
				Providers: make(map[string]float64, len(snap.Providers)),
			}
			for id, s := range snap.Consumers {
				ev.Consumers[strconv.Itoa(int(id))] = s
			}
			for id, s := range snap.Providers {
				ev.Providers[strconv.Itoa(int(id))] = s
			}
			h.publish("satisfaction", ev)
		},
	}
}
