package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sbqa"
)

// postJSON posts v to url and decodes the JSON response into out.
func postJSON(t testing.TB, url string, v any, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

// sseClient reads an SSE stream and delivers (event, data) pairs.
type sseLine struct {
	event string
	data  string
}

func openSSE(t *testing.T, url string) (<-chan sseLine, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	ch := make(chan sseLine, 64)
	go func() {
		defer close(ch)
		scanner := bufio.NewScanner(resp.Body)
		var ev sseLine
		for scanner.Scan() {
			line := scanner.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			case line == "" && ev.event != "":
				ch <- ev
				ev = sseLine{}
			}
		}
	}()
	return ch, func() { resp.Body.Close() }
}

// awaitEvent drains the stream until an event of the given kind satisfies
// match (nil matches any), or the deadline passes.
func awaitEvent(t *testing.T, ch <-chan sseLine, kind string, match func(data string) bool) sseLine {
	t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("event stream closed while waiting for %q", kind)
			}
			if ev.event == kind && (match == nil || match(ev.data)) {
				return ev
			}
		case <-deadline:
			t.Fatalf("no %q event within deadline", kind)
		}
	}
}

// TestGatewayEndToEnd drives the full network lifecycle: register a worker
// and a consumer over HTTP, watch the registrations on the event stream,
// submit a query, read its allocation from the response, observe the
// allocation and the execution result on the stream, and confirm the stats
// endpoint counted it all.
func TestGatewayEndToEnd(t *testing.T) {
	gw, err := newGateway(
		sbqa.WithWindow(50),
		sbqa.WithConcurrency(2),
		sbqa.WithAllocatorFactory(func(shard int) sbqa.Allocator {
			return sbqa.NewSbQA(sbqa.SbQAConfig{
				KnBest: sbqa.KnBestParams{K: 4, Kn: 2},
				Seed:   uint64(shard) + 1,
			})
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	events, closeSSE := openSSE(t, srv.URL+"/v1/events")
	defer closeSSE()

	// Register two workers and a consumer; the stream reports the churn.
	for id := 0; id < 2; id++ {
		resp := postJSON(t, srv.URL+"/v1/workers", workerRequest{ID: id, Capacity: 1000, QueueCap: 64, Intention: 0.5}, nil)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("worker registration status %d", resp.StatusCode)
		}
	}
	postJSON(t, srv.URL+"/v1/consumers", consumerRequest{ID: 0, Intention: 0.8, PreferIdle: true}, nil)
	awaitEvent(t, events, "registered", func(data string) bool {
		return strings.Contains(data, `"kind":"consumer"`)
	})

	// Submit: the response carries the allocation.
	var qr queryResponse
	postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "allocation"}, &qr)
	if qr.Error != "" {
		t.Fatalf("submit error: %s", qr.Error)
	}
	if qr.QueryID == 0 || len(qr.Selected) != 1 {
		t.Fatalf("submit response %+v, want an assigned ID and one selected worker", qr)
	}

	// The allocation and its execution result arrive on the stream.
	idTag := fmt.Sprintf(`"query_id":%d`, qr.QueryID)
	awaitEvent(t, events, "allocation", func(data string) bool { return strings.Contains(data, idTag) })
	resultEv := awaitEvent(t, events, "result", func(data string) bool { return strings.Contains(data, idTag) })
	var res resultJSON
	if err := json.Unmarshal([]byte(resultEv.data), &res); err != nil {
		t.Fatal(err)
	}
	if res.Provider != int(qr.Selected[0]) {
		t.Errorf("result from provider %d, allocation selected %v", res.Provider, qr.Selected)
	}

	// wait=results blocks through execution and returns the results inline.
	var qr2 queryResponse
	postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "results"}, &qr2)
	if qr2.Error != "" || len(qr2.Results) != 1 {
		t.Fatalf("wait=results response %+v, want one inline result", qr2)
	}

	// wait=none returns 202 immediately, yet the query still executes — its
	// lifecycle is detached from the HTTP request (the result arrives on
	// the stream).
	var qrNone queryResponse
	respNone := postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 0, N: 1, Work: 0.5, Wait: "none"}, &qrNone)
	if respNone.StatusCode != http.StatusAccepted || qrNone.QueryID == 0 {
		t.Fatalf("wait=none: status %d resp %+v", respNone.StatusCode, qrNone)
	}
	noneTag := fmt.Sprintf(`"query_id":%d`, qrNone.QueryID)
	awaitEvent(t, events, "result", func(data string) bool { return strings.Contains(data, noneTag) })

	// A rejected query reports its reason and shows up on the stream.
	var qr3 queryResponse
	resp := postJSON(t, srv.URL+"/v1/queries", queryRequest{Consumer: 42, N: 1, Work: 1}, &qr3)
	if resp.StatusCode != http.StatusConflict || qr3.Error == "" {
		t.Fatalf("unregistered-consumer submit: status %d resp %+v", resp.StatusCode, qr3)
	}
	awaitEvent(t, events, "rejection", nil)

	// Stats counted the lifecycle.
	var st statsResponse
	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	var mediations, rejections uint64
	for _, sh := range st.Shards {
		mediations += sh.Mediations
		rejections += sh.Rejections
	}
	if mediations != 3 || rejections != 1 {
		t.Errorf("stats: mediations=%d rejections=%d, want 3/1", mediations, rejections)
	}
	if st.Providers != 2 || st.Consumers != 1 {
		t.Errorf("stats: providers=%d consumers=%d, want 2/1", st.Providers, st.Consumers)
	}
	if st.QueriesSubmitted != 4 {
		t.Errorf("stats: queries_submitted=%d, want 4", st.QueriesSubmitted)
	}
	if len(st.Shards) != 2 {
		t.Errorf("stats: %d shards, want 2", len(st.Shards))
	}
	if s, ok := st.Satisfaction.Consumers["0"]; !ok || s <= 0 {
		t.Errorf("consumer 0 satisfaction %v (present=%v), want positive", s, ok)
	}

	// Worker deregistration round-trips and the departure hits the stream.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/workers/1", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("unregister status %d", dresp.StatusCode)
	}
	awaitEvent(t, events, "departed", func(data string) bool {
		return strings.Contains(data, `"kind":"provider"`) && strings.Contains(data, `"id":1`)
	})
}

// TestGatewayValidation: malformed bodies and unknown workers produce clean
// HTTP errors, not engine panics.
func TestGatewayValidation(t *testing.T) {
	gw, err := newGateway(sbqa.WithWindow(10), sbqa.WithAllocator(sbqa.NewCapacityAllocator()))
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	srv := httptest.NewServer(gw.handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/queries", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed submit status %d, want 400", resp.StatusCode)
	}

	// A worker with non-positive capacity is rejected by the engine's
	// validation and surfaces as a 400.
	r2 := postJSON(t, srv.URL+"/v1/workers", workerRequest{ID: 1, Capacity: 0}, nil)
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid worker status %d, want 400", r2.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/workers/77", nil)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown worker delete status %d, want 404", r3.StatusCode)
	}
}
