package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sbqa"
)

// newPolicyGateway builds a gateway running a declarative policy, as the
// daemon's main() does.
func newPolicyGateway(t *testing.T, spec sbqa.PolicySpec, extra ...sbqa.EngineOption) (*gateway, *httptest.Server) {
	t.Helper()
	opts := append([]sbqa.EngineOption{
		sbqa.WithWindow(50),
		sbqa.WithPolicy(spec),
	}, extra...)
	gw, err := newGateway(opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.handler())
	t.Cleanup(func() {
		srv.Close()
		gw.close()
	})
	return gw, srv
}

func putJSON(t *testing.T, url string, v any, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

// TestPolicyEndpointsEndToEnd: GET the boot policy, PUT a replacement,
// watch the policy_change SSE event, confirm the stats generation, and see
// the new policy actually mediating.
func TestPolicyEndpointsEndToEnd(t *testing.T) {
	boot := sbqa.PolicySpec{Name: "boot", Kind: sbqa.PolicySbQA, K: 4, Kn: 2, Seed: 1}
	_, srv := newPolicyGateway(t, boot)

	events, closeSSE := openSSE(t, srv.URL+"/v1/events")
	defer closeSSE()

	// GET: the normalized boot policy.
	var got policyResponse
	resp, err := http.Get(srv.URL + "/v1/policy")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Policy == nil || got.Policy.Kind != sbqa.PolicySbQA || got.Policy.K != 4 {
		t.Fatalf("GET /v1/policy = %+v", got)
	}
	if got.Generation != 0 {
		t.Fatalf("boot generation = %d, want 0", got.Generation)
	}

	// PUT: swap to a wider policy.
	var putResp map[string]uint64
	wider := sbqa.PolicySpec{Name: "wider", Kind: sbqa.PolicySbQA, K: 8, Kn: 4, Seed: 2}
	if resp := putJSON(t, srv.URL+"/v1/policy", wider, &putResp); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /v1/policy status = %d", resp.StatusCode)
	}
	if putResp["generation"] != 1 {
		t.Fatalf("PUT generation = %d, want 1", putResp["generation"])
	}
	awaitEvent(t, events, "policy_change", func(data string) bool {
		return strings.Contains(data, `"name":"wider"`) && strings.Contains(data, `"generation":1`)
	})

	// An invalid PUT is rejected with 400 and changes nothing.
	bad := map[string]any{"kind": "warp-drive"}
	if resp := putJSON(t, srv.URL+"/v1/policy", bad, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid PUT status = %d, want 400", resp.StatusCode)
	}

	// Mediate once so the shard adopts the generation, then check stats.
	postJSON(t, srv.URL+"/v1/workers", map[string]any{"id": 1, "capacity": 100, "intention": 0.5}, nil)
	postJSON(t, srv.URL+"/v1/consumers", map[string]any{"id": 0, "intention": 0.6}, nil)
	var qr queryResponse
	postJSON(t, srv.URL+"/v1/queries", map[string]any{"consumer": 0, "n": 1, "work": 1, "wait": "allocation"}, &qr)
	if qr.Error != "" {
		t.Fatalf("query failed: %s", qr.Error)
	}

	var st statsResponse
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.PolicyGeneration != 1 {
		t.Fatalf("stats policy_generation = %d, want 1", st.PolicyGeneration)
	}
	if st.Shards[0].PolicyGeneration != 1 || st.Shards[0].PolicySwaps != 1 {
		t.Fatalf("shard policy stats = %+v", st.Shards[0])
	}

	// GET reflects the swap and the per-shard adoption.
	resp, err = http.Get(srv.URL + "/v1/policy")
	if err != nil {
		t.Fatal(err)
	}
	got = policyResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Policy == nil || got.Policy.Name != "wider" || got.Generation != 1 {
		t.Fatalf("GET after PUT = %+v", got)
	}
	if len(got.Shards) != 1 || got.Shards[0].PolicySwaps != 1 {
		t.Fatalf("GET shard adoption = %+v", got.Shards)
	}
}

// TestPolicyPreviewDryRun ranks a submitted candidate set under a candidate
// policy without touching the engine.
func TestPolicyPreviewDryRun(t *testing.T) {
	_, srv := newPolicyGateway(t, sbqa.PolicySpec{Kind: sbqa.PolicySbQA, K: 4, Kn: 2, Seed: 1})

	f := func(v float64) *float64 { return &v }
	req := map[string]any{
		"policy": sbqa.PolicySpec{Kind: sbqa.PolicySbQA, K: 3, Kn: 3, OmegaMode: sbqa.PolicyOmegaFixed, Seed: 1},
		"query":  map[string]any{"consumer": 0, "n": 1, "work": 2},
		"candidates": []previewCandidate{
			{ID: 1, Utilization: 0.5, Capacity: 1, CI: f(0.9), PI: f(0.1)},
			{ID: 2, Utilization: 0.2, Capacity: 1, CI: f(-0.5), PI: f(0.8)},
			{ID: 3, Utilization: 0.1, Capacity: 1, CI: f(0.4), PI: f(0.4)},
		},
	}
	var got previewResponse
	if resp := postJSON(t, srv.URL+"/v1/policy/preview", req, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("preview status = %d", resp.StatusCode)
	}
	// ω = 0 scores purely by the consumer's intentions: provider 1 wins.
	if len(got.Selected) != 1 || got.Selected[0] != 1 {
		t.Fatalf("preview selected %v, want [1]", got.Selected)
	}
	if len(got.Proposed) != 3 || len(got.Scores) != 3 {
		t.Fatalf("preview proposal = %v scores = %v, want all 3 ranked", got.Proposed, got.Scores)
	}

	// The engine itself was untouched: still generation 0, zero mediations.
	var st statsResponse
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.PolicyGeneration != 0 || st.Shards[0].Mediations != 0 {
		t.Fatalf("preview touched the engine: %+v", st)
	}

	// A capacity-kind preview ranks by free capacity, no intentions needed.
	req["policy"] = sbqa.PolicySpec{Kind: sbqa.PolicyCapacity}
	got = previewResponse{}
	postJSON(t, srv.URL+"/v1/policy/preview", req, &got)
	if len(got.Selected) != 1 || got.Selected[0] != 3 {
		t.Fatalf("capacity preview selected %v, want [3] (least utilized)", got.Selected)
	}

	// Bad specs and empty candidate sets are 400s.
	if resp := postJSON(t, srv.URL+"/v1/policy/preview", map[string]any{"policy": map[string]string{"kind": "bogus"}, "candidates": []previewCandidate{{ID: 1}}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus-kind preview status = %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/v1/policy/preview", map[string]any{"policy": sbqa.PolicySpec{Kind: sbqa.PolicyCapacity}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-candidates preview status = %d, want 400", resp.StatusCode)
	}
}

// TestRequestHardening exercises the JSON guardrails on every mutating
// endpoint: oversized bodies get 413, non-JSON content types get 415.
func TestRequestHardening(t *testing.T) {
	_, srv := newPolicyGateway(t, sbqa.PolicySpec{Kind: sbqa.PolicySbQA, K: 4, Kn: 2, Seed: 1})

	huge := append([]byte(`{"pad":"`), bytes.Repeat([]byte("x"), maxRequestBody+1024)...)
	huge = append(huge, []byte(`"}`)...)
	endpoints := []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/consumers"},
		{http.MethodPost, "/v1/workers"},
		{http.MethodPost, "/v1/queries"},
		{http.MethodPut, "/v1/policy"},
		{http.MethodPost, "/v1/policy/preview"},
	}
	for _, ep := range endpoints {
		req, err := http.NewRequest(ep.method, srv.URL+ep.path, bytes.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s %s oversized body: status %d, want 413", ep.method, ep.path, resp.StatusCode)
		}

		req, err = http.NewRequest(ep.method, srv.URL+ep.path, strings.NewReader(`{"id":1}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/xml")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("%s %s xml body: status %d, want 415", ep.method, ep.path, resp.StatusCode)
		}
	}

	// A missing Content-Type stays accepted (curl-friendliness).
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/consumers", strings.NewReader(`{"id":7,"intention":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Del("Content-Type")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("missing content-type: status %d, want 201", resp.StatusCode)
	}
}

// TestStatsCountsDroppedEvents wedges a deliberately slow SSE subscriber
// (never reads) and floods the hub past its per-subscriber buffer; the
// stats endpoint must surface the drops while the engine stays unblocked.
func TestStatsCountsDroppedEvents(t *testing.T) {
	gw, srv := newPolicyGateway(t, sbqa.PolicySpec{Kind: sbqa.PolicySbQA, K: 4, Kn: 2, Seed: 1})

	// A raw subscriber that never drains stands in for a stalled client.
	_, unsubscribe := gw.hub.subscribe()
	defer unsubscribe()

	const floods = subscriberBuffer + 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < floods; i++ {
			gw.hub.publish("flood", map[string]int{"i": i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked behind a stalled subscriber")
	}

	var st statsResponse
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.EventsDropped != 50 {
		t.Fatalf("events_dropped = %d, want 50", st.EventsDropped)
	}
}
