package main

// Tests for the flight-recorder debug surface: the per-query trace endpoint,
// the slow-trace log, the explain endpoint, inbound traceparent adoption,
// cross-node propagation over a cluster forward, and the pprof flag gate.
//
// TestGatewayTraceSmoke is the trace the CI tracegate step greps: it logs
// the /v1/debug/traces body, which must name all six pipeline stages.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sbqa"
)

// traceViewJSON mirrors the wire form of sbqa.TraceView for assertions.
type traceViewJSON struct {
	TraceID string `json:"trace_id"`
	QueryID int64  `json:"query_id"`
	Status  string `json:"status"`
	Spans   []struct {
		Name    string `json:"name"`
		Class   string `json:"class"`
		StartNS int64  `json:"start_ns"`
		EndNS   int64  `json:"end_ns"`
	} `json:"spans"`
	Explain *struct {
		Allocator string `json:"allocator"`
		Entries   []struct {
			Rank     int     `json:"rank"`
			Provider int     `json:"provider"`
			Omega    float64 `json:"omega"`
			Score    float64 `json:"score"`
		} `json:"entries"`
	} `json:"explain"`
}

func getJSONStatus(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// awaitTrace polls the trace endpoint until the trace reaches a terminal
// status (the shard goroutine finishes it after releasing the waiter).
func awaitTrace(t testing.TB, baseURL, id string) traceViewJSON {
	t.Helper()
	var v traceViewJSON
	deadline := time.Now().Add(2 * time.Second)
	for {
		code := getJSONStatus(t, fmt.Sprintf("%s/v1/queries/%s/trace", baseURL, id), &v)
		if code == http.StatusOK && v.Status != "" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %q never finished (last status %d, %+v)", id, code, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func traceGateway(t *testing.T, opts ...sbqa.EngineOption) *httptest.Server {
	t.Helper()
	gw, err := newGateway(append([]sbqa.EngineOption{
		sbqa.WithWindow(50),
		sbqa.WithConcurrency(1),
		sbqa.WithAllocatorFactory(func(shard int) sbqa.Allocator {
			return sbqa.NewSbQA(sbqa.SbQAConfig{
				KnBest: sbqa.KnBestParams{K: 4, Kn: 2},
				Seed:   uint64(shard) + 1,
			})
		}),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.close)
	srv := httptest.NewServer(gw.handler())
	t.Cleanup(srv.Close)
	registerWorkers(t, srv.URL)
	postJSON(t, srv.URL+"/v1/consumers", consumerRequest{ID: 0, Intention: 0.8}, nil)
	return srv
}

// TestGatewayTraceSmoke: at -trace-sample 1 a submitted query yields a
// finished trace whose spans cover all six pipeline stages, a complete
// explain record, and shows up in the slow-trace log and stage histograms.
func TestGatewayTraceSmoke(t *testing.T) {
	srv := traceGateway(t, sbqa.WithTracing(1, 64))

	qr := submitWait(t, srv.URL, 0, "allocation")
	v := awaitTrace(t, srv.URL, fmt.Sprintf("%d", qr.QueryID))
	if v.Status != "allocated" {
		t.Fatalf("trace status %q, want allocated", v.Status)
	}
	if len(v.TraceID) != 32 {
		t.Fatalf("trace_id %q, want 32 hex digits", v.TraceID)
	}
	stages := make(map[string]bool)
	for _, s := range v.Spans {
		if s.StartNS > s.EndNS {
			t.Errorf("span %s: start %d after end %d", s.Name, s.StartNS, s.EndNS)
		}
		stages[s.Name] = true
	}
	for _, want := range []string{
		sbqa.StageAdmission, sbqa.StageQueue, sbqa.StageFanout,
		sbqa.StageImpute, sbqa.StageScore, sbqa.StageDispatch,
	} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (spans: %+v)", want, v.Spans)
		}
	}
	if v.Explain == nil || len(v.Explain.Entries) == 0 {
		t.Fatalf("trace carries no explain entries: %+v", v.Explain)
	}
	for i, e := range v.Explain.Entries {
		if e.Rank != i+1 {
			t.Errorf("explain entry %d: rank %d, want %d", i, e.Rank, i+1)
		}
	}

	// The explain endpoint serves the same record standalone.
	var ex struct {
		TraceID string          `json:"trace_id"`
		Explain json.RawMessage `json:"explain"`
	}
	if code := getJSONStatus(t, fmt.Sprintf("%s/v1/debug/explain/%d", srv.URL, qr.QueryID), &ex); code != http.StatusOK {
		t.Fatalf("explain endpoint status %d", code)
	}
	if ex.TraceID != v.TraceID || len(ex.Explain) == 0 {
		t.Fatalf("explain endpoint returned trace %q with body %q", ex.TraceID, ex.Explain)
	}

	// The slow-trace log lists the finished trace; its raw body is what the
	// CI tracegate greps for the stage names.
	resp, err := http.Get(srv.URL + "/v1/debug/traces?min_ms=0")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	t.Logf("debug traces body: %s", body)
	if !strings.Contains(body, v.TraceID) {
		t.Errorf("slow-trace log does not list trace %s", v.TraceID)
	}
	for _, want := range []string{"admission", "queue", "fanout", "impute", "score", "dispatch"} {
		if !strings.Contains(body, fmt.Sprintf("%q", want)) {
			t.Errorf("slow-trace log missing stage %q", want)
		}
	}

	// Stage histograms reached the metrics exposition.
	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(mraw)
	for _, want := range []string{
		`sbqa_stage_seconds_count{stage="score"}`,
		"sbqa_traces_started_total",
		"sbqa_build_info",
		"sbqa_go_goroutines",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}

	// Bad query parameters answer 400, not a panic or an empty 200.
	if code := getJSONStatus(t, srv.URL+"/v1/debug/traces?min_ms=-1", nil); code != http.StatusBadRequest {
		t.Errorf("min_ms=-1 status %d, want 400", code)
	}
}

// TestGatewayTraceAdoptsInboundTraceparent: a client-supplied W3C
// traceparent pins the gateway's trace identity (and forces sampling), so
// an upstream system can stitch the mediation into its own trace.
func TestGatewayTraceAdoptsInboundTraceparent(t *testing.T) {
	srv := traceGateway(t, sbqa.WithTracing(0, 64)) // sample 0: only the inbound header traces

	const wantID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body := strings.NewReader(`{"consumer": 0, "n": 1, "work": 0.1, "wait": "allocation"}`)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/queries", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(sbqa.TraceparentHeader, "00-"+wantID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.QueryID == 0 {
		t.Fatalf("submit status %d resp %+v", resp.StatusCode, qr)
	}
	v := awaitTrace(t, srv.URL, wantID)
	if int64(v.QueryID) != qr.QueryID {
		t.Errorf("trace %s annotated query %d, submitted %d", wantID, v.QueryID, qr.QueryID)
	}
	if v.Status != "allocated" {
		t.Errorf("trace status %q, want allocated", v.Status)
	}
}

// TestGatewayDebugEndpointsWithoutTracer: a daemon booted without
// -trace-sample answers 404 on the whole debug surface.
func TestGatewayDebugEndpointsWithoutTracer(t *testing.T) {
	srv := traceGateway(t)
	for _, path := range []string{
		"/v1/queries/1/trace",
		"/v1/debug/traces",
		"/v1/debug/explain/1",
	} {
		if code := getJSONStatus(t, srv.URL+path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s status %d without tracer, want 404", path, code)
		}
	}
}

// TestClusterForwardPropagatesTrace: a sampled submit through the NON-owner
// node forwards with a traceparent header, so both nodes record segments of
// ONE trace — the hop node with a "forward" span and status "forwarded",
// the owner with the full mediation pipeline.
func TestClusterForwardPropagatesTrace(t *testing.T) {
	opts := append(deterministicOpts(), sbqa.WithTracing(1, 64))
	nodes := startTestCluster(t, 2, false, opts...)
	for _, cn := range nodes {
		registerWorkers(t, cn.srv.URL)
	}
	// A consumer owned by node 1, submitted through node 0: forwarded.
	c := consumerOwnedBy(t, nodes, 1, 0)
	resp := postJSON(t, nodes[0].srv.URL+"/v1/consumers", consumerRequest{ID: c, Intention: 0.9}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register consumer: %d", resp.StatusCode)
	}
	waitCondition(t, 5*time.Second, "consumer registered on owner", func() bool {
		return nodes[1].g.eng.Stats().Consumers == 1
	})
	qr := submitWait(t, nodes[0].srv.URL, c, "allocation")

	// The owner's trace carries the mediation pipeline.
	owner := awaitTrace(t, nodes[1].srv.URL, fmt.Sprintf("%d", qr.QueryID))
	if owner.Status != "allocated" {
		t.Fatalf("owner trace status %q, want allocated", owner.Status)
	}
	ownerStages := make(map[string]bool)
	for _, s := range owner.Spans {
		ownerStages[s.Name] = true
	}
	for _, want := range []string{sbqa.StageQueue, sbqa.StageFanout, sbqa.StageScore, sbqa.StageDispatch} {
		if !ownerStages[want] {
			t.Errorf("owner trace missing stage %q (spans: %+v)", want, owner.Spans)
		}
	}

	// The hop node holds a segment under the SAME trace ID: the forward
	// span, finished with status "forwarded".
	hop := awaitTrace(t, nodes[0].srv.URL, owner.TraceID)
	if hop.TraceID != owner.TraceID {
		t.Fatalf("hop trace %s, owner trace %s — want one stitched trace", hop.TraceID, owner.TraceID)
	}
	if hop.Status != "forwarded" {
		t.Errorf("hop trace status %q, want forwarded", hop.Status)
	}
	var fwd bool
	for _, s := range hop.Spans {
		if s.Name == sbqa.StageForward {
			fwd = true
			if s.Class != nodes[1].id {
				t.Errorf("forward span class %q, want owner node %q", s.Class, nodes[1].id)
			}
		}
	}
	if !fwd {
		t.Errorf("hop trace has no forward span: %+v", hop.Spans)
	}
}

// TestPprofFlagGate: /debug/pprof/ exists only when -debug-pprof was given.
func TestPprofFlagGate(t *testing.T) {
	srv := traceGateway(t)
	if code := getJSONStatus(t, srv.URL+"/debug/pprof/", nil); code != http.StatusNotFound {
		t.Errorf("pprof without flag: status %d, want 404", code)
	}

	enablePprof = true
	defer func() { enablePprof = false }()
	srvOn := traceGateway(t)
	if code := getJSONStatus(t, srvOn.URL+"/debug/pprof/", nil); code != http.StatusOK {
		t.Errorf("pprof with flag: status %d, want 200", code)
	}
}
