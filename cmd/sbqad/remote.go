package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"sbqa"
)

// Remote participants: consumers and workers registered with an intention
// webhook URL. The daemon gathers CI_q / PI_q over HTTP during the batched
// intention fan-out — one POST per mediation for a consumer (the whole
// candidate batch), one POST per proposed query for a worker — under the
// engine's per-participant deadline. A webhook that misses the deadline or
// fails is imputed from the participant's satisfaction registry state; the
// mediation never stalls on it.
//
// Webhook contract (all JSON):
//
//	consumer  POST {"query": {...}, "candidates": [{...}, ...]}
//	          → {"intentions": [i0, i1, ...]}   (aligned with candidates)
//	worker    POST {"query": {...}}
//	          → {"intention": i}
//
// Intentions are clamped into [-1, 1] on receipt.

// wireQuery is the webhook-side view of a query.
type wireQuery struct {
	ID       int64   `json:"id"`
	Consumer int     `json:"consumer"`
	Class    int     `json:"class"`
	N        int     `json:"n"`
	Work     float64 `json:"work"`
}

func toWireQuery(q sbqa.Query) wireQuery {
	return wireQuery{
		ID:       int64(q.ID),
		Consumer: int(q.Consumer),
		Class:    q.Class,
		N:        q.N,
		Work:     q.Work,
	}
}

// queryTraceparent renders a sampled query's trace context for webhook
// propagation; empty when the query is untraced.
func queryTraceparent(q sbqa.Query) string {
	if !q.Trace.Sampled {
		return ""
	}
	return sbqa.FormatTraceparent(q.Trace)
}

// wireSnapshot is the webhook-side view of a candidate provider.
type wireSnapshot struct {
	ID          int     `json:"id"`
	Utilization float64 `json:"utilization"`
	QueueLen    int     `json:"queue_len"`
	Capacity    float64 `json:"capacity"`
	PendingWork float64 `json:"pending_work"`
}

type intentionWebhookRequest struct {
	Query      wireQuery      `json:"query"`
	Candidates []wireSnapshot `json:"candidates,omitempty"`
}

type consumerWebhookResponse struct {
	Intentions []float64 `json:"intentions"`
}

type workerWebhookResponse struct {
	Intention float64 `json:"intention"`
}

// postWebhookJSON POSTs req to url and decodes the response into out. The context
// carries the per-participant deadline the engine's fan-out applies.
// traceparent, when non-empty, propagates the mediation's trace context so
// participant-side handling can join the query's trace.
func postWebhookJSON(ctx context.Context, client *http.Client, url, traceparent string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		httpReq.Header.Set(sbqa.TraceparentHeader, traceparent)
	}
	resp, err := client.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("webhook %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// remoteConsumer is a consumer whose intentions live behind a webhook. It
// implements the synchronous Consumer contract (with a constant fallback,
// used only by code paths that bypass the batched protocol) plus
// ConsumerParticipant, which the mediator's fan-out prefers.
type remoteConsumer struct {
	id       sbqa.ConsumerID
	url      string
	fallback sbqa.Intention
	client   *http.Client
}

func (rc *remoteConsumer) ConsumerID() sbqa.ConsumerID { return rc.id }

// Intention is the synchronous fallback; the batched fan-out never calls it.
func (rc *remoteConsumer) Intention(sbqa.Query, sbqa.ProviderSnapshot) sbqa.Intention {
	return rc.fallback
}

// Intentions implements sbqa.ConsumerParticipant over the webhook.
func (rc *remoteConsumer) Intentions(ctx context.Context, q sbqa.Query, kn []sbqa.ProviderSnapshot) ([]sbqa.Intention, error) {
	req := intentionWebhookRequest{
		Query:      toWireQuery(q),
		Candidates: make([]wireSnapshot, len(kn)),
	}
	for i, snap := range kn {
		req.Candidates[i] = wireSnapshot{
			ID:          int(snap.ID),
			Utilization: snap.Utilization,
			QueueLen:    snap.QueueLen,
			Capacity:    snap.Capacity,
			PendingWork: snap.PendingWork,
		}
	}
	var resp consumerWebhookResponse
	if err := postWebhookJSON(ctx, rc.client, rc.url, queryTraceparent(q), req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Intentions) != len(kn) {
		return nil, fmt.Errorf("webhook %s: %d intentions for %d candidates", rc.url, len(resp.Intentions), len(kn))
	}
	out := make([]sbqa.Intention, len(kn))
	for i, v := range resp.Intentions {
		out[i] = sbqa.Intention(v).Clamp()
	}
	return out, nil
}

var _ sbqa.Consumer = (*remoteConsumer)(nil)
var _ sbqa.ConsumerParticipant = (*remoteConsumer)(nil)

// remoteWorker embeds a local executor (*sbqa.LiveWorker) — it still runs
// queries on the daemon's goroutines and is dispatched to through the
// normal worker machinery — but sources its mediation-time intention from a
// webhook, implementing sbqa.ProviderParticipant so the fan-out contacts it
// concurrently under the per-participant deadline.
type remoteWorker struct {
	*sbqa.LiveWorker
	url    string
	client *http.Client
}

// IntentionContext implements sbqa.ProviderParticipant over the webhook.
func (rw *remoteWorker) IntentionContext(ctx context.Context, q sbqa.Query) (sbqa.Intention, error) {
	var resp workerWebhookResponse
	if err := postWebhookJSON(ctx, rw.client, rw.url, queryTraceparent(q), intentionWebhookRequest{Query: toWireQuery(q)}, &resp); err != nil {
		return 0, err
	}
	return sbqa.Intention(resp.Intention).Clamp(), nil
}

var _ sbqa.Provider = (*remoteWorker)(nil)
var _ sbqa.ProviderParticipant = (*remoteWorker)(nil)
var _ sbqa.LiveExecutor = (*remoteWorker)(nil)
