// Command sbqa-interactive is the terminal version of the demo's Scenario 7:
// play the role of a BOINC volunteer, set your own preferences, and watch
// how each mediation technique treats you. The demo's claim to verify: only
// the SQLB mediation used by SbQA lets you reach your objectives whatever
// your interests are.
//
// The program reads answers from stdin; press Enter to accept defaults.
// It exits on EOF or the command "quit".
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"sbqa/internal/boinc"
	"sbqa/internal/experiments"
	"sbqa/internal/metrics"
	"sbqa/internal/model"
)

func main() {
	in := bufio.NewScanner(os.Stdin)
	fmt.Println("SbQA interactive demo — play a BOINC participant (Scenario 7).")
	fmt.Println("Projects: [0] SETI@home (popular)  [1] proteins@home (normal)  [2] Einstein@home (unpopular)")
	fmt.Println()

	for {
		fmt.Print("play a [v]olunteer or a [p]roject? [v] ")
		role := "v"
		if in.Scan() {
			if t := strings.ToLower(strings.TrimSpace(in.Text())); t != "" {
				role = t
			}
		} else {
			return
		}
		if role == "q" || role == "quit" {
			return
		}
		if strings.HasPrefix(role, "p") {
			objective, ok := askFloat(in, "your project's satisfaction objective δs ≥", 0.6, 0, 1)
			if !ok {
				return
			}
			runConsumerRound(in, objective)
		} else {
			prefs, ok := askPrefs(in)
			if !ok {
				return
			}
			objective, ok := askFloat(in, "your satisfaction objective δs ≥", 0.55, 0, 1)
			if !ok {
				return
			}
			runRound(prefs, objective)
		}
		fmt.Println()
		fmt.Print("another round? [Y/n] ")
		if !in.Scan() {
			return
		}
		ans := strings.ToLower(strings.TrimSpace(in.Text()))
		if ans == "n" || ans == "no" || ans == "quit" || ans == "q" {
			return
		}
	}
}

// askPrefs collects the player's three project preferences.
func askPrefs(in *bufio.Scanner) ([3]float64, bool) {
	defaults := [3]float64{-0.8, -0.8, 0.9}
	names := [3]string{"SETI@home", "proteins@home", "Einstein@home"}
	var prefs [3]float64
	for i := range prefs {
		v, ok := askFloat(in, fmt.Sprintf("your preference for %s", names[i]), defaults[i], -1, 1)
		if !ok {
			return prefs, false
		}
		prefs[i] = v
	}
	return prefs, true
}

// askFloat prompts for one bounded float with a default.
func askFloat(in *bufio.Scanner, what string, def, lo, hi float64) (float64, bool) {
	for {
		fmt.Printf("%s [%.2f]: ", what, def)
		if !in.Scan() {
			return 0, false
		}
		text := strings.TrimSpace(in.Text())
		if text == "quit" || text == "q" {
			return 0, false
		}
		if text == "" {
			return def, true
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil || v < lo || v > hi {
			fmt.Printf("  please enter a number in [%g, %g]\n", lo, hi)
			continue
		}
		return v, true
	}
}

// runConsumerRound lets the player shape a project's host preferences and
// see which mediation meets its objective.
func runConsumerRound(in *bufio.Scanner, objective float64) {
	fastPref, ok := askFloat(in, "your preference for the fastest 25% of hosts", 0.9, -1, 1)
	if !ok {
		return
	}
	slowPref, ok := askFloat(in, "your preference for the remaining hosts", 0.1, -1, 1)
	if !ok {
		return
	}
	opt := experiments.Options{Volunteers: 60, Duration: 900, Seed: 7}
	cfg := boinc.DefaultConfig(opt.Volunteers, opt.Seed)
	cfg.Mode = boinc.Autonomous
	cfg.Duration = opt.Duration
	const you = model.ConsumerID(2) // Einstein@home — the hard case

	table := &metrics.Table{
		Title:   "how each mediation treated your project",
		Columns: []string{"technique", "your δs", "objective met", "your queries' RT"},
	}
	for i, tech := range experiments.AllTechniques() {
		w, err := boinc.NewWorld(tech.New(opt.Seed+uint64(i)*7919), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sbqa-interactive:", err)
			os.Exit(1)
		}
		vols := w.Volunteers()
		caps := make([]float64, len(vols))
		for j, v := range vols {
			caps[j] = v.Capacity()
		}
		cut := quantileOf(caps, 0.75)
		hostPrefs := make([]float64, len(vols))
		for j, v := range vols {
			if v.Capacity() >= cut {
				hostPrefs[j] = fastPref
			} else {
				hostPrefs[j] = slowPref
			}
		}
		w.SetProjectPrefs(you, hostPrefs)
		w.Run()
		proj := w.Projects()[you]
		sat := proj.Satisfaction()
		met := proj.Online() && sat >= objective
		table.Rows = append(table.Rows, []string{
			tech.Name,
			fmt.Sprintf("%.3f", sat),
			fmt.Sprintf("%v", met),
			fmt.Sprintf("online=%v", proj.Online()),
		})
	}
	fmt.Println()
	_ = table.Render(os.Stdout)
}

// quantileOf returns the q-th quantile of values.
func quantileOf(values []float64, q float64) float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// runRound plants the player as volunteer 0 and runs every technique.
func runRound(prefs [3]float64, objective float64) {
	opt := experiments.Options{Volunteers: 60, Duration: 900, Seed: 7}
	cfg := boinc.DefaultConfig(opt.Volunteers, opt.Seed)
	cfg.Mode = boinc.Autonomous
	cfg.Duration = opt.Duration
	const you = model.ProviderID(0)

	table := &metrics.Table{
		Title:   "how each mediation treated you",
		Columns: []string{"technique", "your δs", "still online", "objective met", "system RT"},
	}
	for i, tech := range experiments.AllTechniques() {
		w, err := boinc.NewWorld(tech.New(opt.Seed+uint64(i)*7919), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbqa-interactive: %v\n", err)
			os.Exit(1)
		}
		w.SetVolunteerPrefs(you, prefs[:])
		res := w.Run()
		vol := w.Volunteers()[you]
		sat := vol.Satisfaction()
		if !vol.Online() {
			sat = 0
		}
		met := vol.Online() && sat >= objective
		table.Rows = append(table.Rows, []string{
			tech.Name,
			fmt.Sprintf("%.3f", sat),
			fmt.Sprintf("%v", vol.Online()),
			fmt.Sprintf("%v", met),
			fmt.Sprintf("%.2f", res.MeanResponseTime),
		})
	}
	fmt.Println()
	_ = table.Render(os.Stdout)
}
