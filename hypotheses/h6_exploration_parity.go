package hypotheses

import (
	"fmt"
	"math"

	"sbqa/internal/lab"
)

// H6: a null hypothesis the catalog keeps on purpose — does KnBest's
// randomized exploration matter at all when the workload is stationary and
// a tenth of the fleet free-rides? The claim is the skeptic's position
// (kn=1 pure exploitation is just as good), stated with a tight 2% band so
// the engine gets a fair chance to falsify it.
func init() {
	lab.Register(lab.Hypothesis{
		ID: "H6-exploration-parity",
		Claim: "Under a stationary Poisson workload with 10% free-riders, pure " +
			"exploitation (kn=1) matches kn=3 on mean consumer satisfaction within 2% — " +
			"exploration adds nothing.",
		Rationale: "Devil's advocate for KnBest: if scores converge quickly, always " +
			"taking the argmax should be as good as sampling. But kn=1 also never " +
			"re-probes providers whose learned intentions went sour, so a persistent " +
			"adversary population may pin it in a worse equilibrium.",
		Scenarios: func(scale lab.Scale) []lab.Scenario {
			// ρ ≈ 0.75 over the honest 90% of a 45-provider class — stationary
			// but loaded, so always-argmax has to live with its choices.
			duration := pick(scale, 300, 60)
			wl := lab.Workload{
				Classes: uniformClasses(
					3,
					int(pick(scale, 12, 5)),
					int(pick(scale, 45, 15)),
					lab.ArrivalSpec{Kind: "poisson", Rate: pick(scale, 14, 5)},
					lab.CostSpec{Kind: "exp", Mean: 2},
				),
				Adversaries:  lab.AdversarySpec{FreeRiders: 0.1},
				QueryTimeout: 20,
			}
			return duel("h6", scale, wl, duration, sbqa(8, 1, 1), sbqa(8, 3, 1))
		},
		Judge: func(reports []*lab.Report) lab.Outcome {
			exploit, explore := reports[0], reports[1]
			gap := pct(exploit.ConsumerSatisfaction, explore.ConsumerSatisfaction)
			o := lab.Outcome{
				Detail: fmt.Sprintf("kn=1 consumer δs %.4f vs kn=3 %.4f (%+.1f%%, parity band ±2%%); "+
					"free-rider share %.3f vs %.3f",
					exploit.ConsumerSatisfaction, explore.ConsumerSatisfaction, gap,
					exploit.Shares.FreeRider, explore.Shares.FreeRider),
				Metrics: map[string]float64{
					"kn1_consumer_ds":     exploit.ConsumerSatisfaction,
					"kn3_consumer_ds":     explore.ConsumerSatisfaction,
					"ds_gap_pct":          gap,
					"kn1_freerider_share": exploit.Shares.FreeRider,
					"kn3_freerider_share": explore.Shares.FreeRider,
				},
				Verdict: lab.Refuted,
			}
			if math.Abs(gap) <= 2 {
				o.Verdict = lab.Confirmed
			}
			return o
		},
	})
}
