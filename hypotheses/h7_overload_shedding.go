package hypotheses

import (
	"fmt"

	"sbqa/internal/lab"
	"sbqa/internal/qos"
)

// H7: overload survival. A 10x flash crowd on the batch class drives the
// mediation station to ~5x its capacity. With QoS classes — strict-priority
// interactive, weight-fair batch bounded at a shallow queue — the scheduler
// sheds batch overflow (loudly, by reason) while interactive queue waits
// barely move. A FIFO station given the identical traffic makes interactive
// queries wait behind the flood.
func init() {
	lab.Register(lab.Hypothesis{
		ID: "H7-overload-shedding",
		Claim: "Under a 10x flash crowd on the batch class (station offered load ~5x capacity), " +
			"class-aware scheduling with deadline-aware shedding keeps the interactive class's " +
			"p99 queue wait within 2x of the calm baseline while batch absorbs the loss as " +
			"counted sheds; the same traffic through a FIFO station does not (p99 > 2x baseline).",
		Rationale: "Strict-priority + weighted-fair picking isolates interactive from batch " +
			"backlog, and the bounded batch queue converts overload into typed queue_full sheds " +
			"instead of unbounded wait. FIFO has no isolation: every interactive query queues " +
			"behind the flood. Conservation (issued == mediated + rejected + shed + queued) " +
			"must hold exactly in all three runs — shedding is never silent.",
		Scenarios: h7Scenarios,
		Judge: func(reports []*lab.Report) lab.Outcome {
			flash, calm, fifo := reports[0], reports[1], reports[2]
			base := classByName(calm, "interactive").QueueWaitP99
			qosP99 := classByName(flash, "interactive").QueueWaitP99
			fifoP99 := classByName(fifo, "interactive").QueueWaitP99
			batchShed := classByName(flash, "batch").Shed

			conserved := true
			for _, r := range reports {
				if r.Issued != r.Mediated+r.Rejected+r.Shed+r.Queued {
					conserved = false
				}
			}

			o := lab.Outcome{
				Detail: fmt.Sprintf("interactive p99 queue wait: calm %.3fs, qos+flash %.3fs (%.2fx), "+
					"fifo+flash %.3fs (%.2fx); threshold 2x; batch sheds under qos %d of %d issued; "+
					"conservation (issued == mediated+rejected+shed+queued) holds in all runs: %v",
					base, qosP99, ratio(qosP99, base), fifoP99, ratio(fifoP99, base),
					batchShed, classByName(flash, "batch").Issued, conserved),
				Metrics: map[string]float64{
					"calm_interactive_p99_wait_s": base,
					"qos_interactive_p99_wait_s":  qosP99,
					"fifo_interactive_p99_wait_s": fifoP99,
					"qos_wait_ratio":              ratio(qosP99, base),
					"fifo_wait_ratio":             ratio(fifoP99, base),
					"qos_batch_shed":              float64(batchShed),
					"fifo_queued_at_horizon":      float64(fifo.Queued),
					"conservation_ok":             b2f(conserved),
				},
				Verdict: lab.Refuted,
			}
			if !conserved {
				// A leaked query is a harness bug, not evidence either way.
				o.Verdict = lab.Inconclusive
				return o
			}
			if ratio(qosP99, base) <= 2 && ratio(fifoP99, base) > 2 && batchShed > 0 {
				o.Verdict = lab.Confirmed
			}
			return o
		},
	})
}

// h7Scenarios builds the pitted triple: [qos+flash, qos+calm, fifo+flash].
// All three share the seed, the population, the arrival processes, and the
// station rate; they differ only in the flash (present/absent) and in the
// scheduling discipline (classed vs single-class FIFO).
func h7Scenarios(scale lab.Scale) []lab.Scenario {
	duration := pick(scale, 240, 40)
	rate := 50.0 // station mediations/sec; calm offered load is 35/s (ρ = 0.7)

	classes := func(qosMapped bool) []lab.ClassSpec {
		interactive := lab.ClassSpec{
			Name: "interactive", Consumers: 6, Providers: 40,
			Arrival: lab.ArrivalSpec{Kind: "poisson", Rate: 10},
			Cost:    lab.CostSpec{Kind: "exp", Mean: 2},
		}
		batch := lab.ClassSpec{
			Name: "batch", Consumers: 6, Providers: 60,
			Arrival: lab.ArrivalSpec{Kind: "poisson", Rate: 25},
			Cost:    lab.CostSpec{Kind: "exp", Mean: 2},
		}
		if qosMapped {
			interactive.QoS = qos.Interactive
			// Generous deadline: exercises the EDF + feasibility path
			// without biting before the queue bound does.
			interactive.DeadlineS = 5
			batch.QoS = qos.Batch
		}
		return []lab.ClassSpec{interactive, batch}
	}
	flash := []lab.FlashSpec{{
		Class: "batch", At: duration * 0.3, Duration: duration * 0.25, Factor: 10,
	}}
	classedSpec := &qos.Spec{
		Classes: []qos.ClassSpec{
			{Name: qos.Interactive, Weight: 8, Priority: true},
			{Name: qos.Batch, Weight: 1, MaxQueueDepth: 64},
		},
		DefaultClass: qos.Interactive,
	}
	fifoSpec := &qos.Spec{Classes: []qos.ClassSpec{{Name: "fifo", Weight: 1}}}

	mk := func(suffix string, spec *qos.Spec, qosMapped bool, fl []lab.FlashSpec) lab.Scenario {
		return lab.Scenario{
			Name:          fmt.Sprintf("h7/%s-%s", suffix, scale),
			Seed:          1041,
			Duration:      duration,
			Window:        8,
			Policy:        sbqa(8, 3, 1),
			QoS:           spec,
			MediationRate: rate,
			Workload:      lab.Workload{Classes: classes(qosMapped), Flash: fl},
		}
	}
	return []lab.Scenario{
		mk("qos-flash", classedSpec, true, flash),
		mk("qos-calm", classedSpec, true, nil),
		mk("fifo-flash", fifoSpec, false, flash),
	}
}

func ratio(got, base float64) float64 {
	if base == 0 {
		return 0
	}
	return got / base
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
