package hypotheses

import (
	"fmt"

	"sbqa/internal/lab"
	"sbqa/internal/policy"
)

// H1: the paper's central behavioral claim under sudden skew — when one
// class is hit by a flash crowd, satisfaction-based allocation should hold
// consumer satisfaction above a pure load balancer's, because it keeps
// weighing participant intentions while the balancer chases queue depth.
func init() {
	lab.Register(lab.Hypothesis{
		ID: "H1-flash-crowd",
		Claim: "Under a 6x flash crowd on one of four classes, sbqa ends the run with " +
			"the flash-hit class's mean consumer satisfaction at least 5% higher than " +
			"capacity-only allocation's.",
		Rationale: "Capacity-only mediation is interest-blind: under pressure it feeds " +
			"consumers whichever providers are idle, and satisfaction collapses even when " +
			"response times hold. SbQA's score keeps intentions in the loop (ICDE'09 §4).",
		Scenarios: func(scale lab.Scale) []lab.Scenario {
			// Sized for offered load ρ = λ·E[work]/providers ≈ 0.7 per class,
			// so the 6x flash actually saturates c0 instead of vanishing into
			// idle capacity.
			duration := pick(scale, 300, 60)
			wl := lab.Workload{
				Classes: uniformClasses(
					4,
					int(pick(scale, 16, 6)),
					int(pick(scale, 60, 20)),
					lab.ArrivalSpec{Kind: "poisson", Rate: pick(scale, 21, 7)},
					lab.CostSpec{Kind: "exp", Mean: 2},
				),
				Flash: []lab.FlashSpec{{
					Class: "c0", At: duration * 0.3, Duration: duration * 0.2, Factor: 6,
				}},
			}
			return duel("h1", scale, wl, duration, sbqa(8, 3, 1), policy.Spec{Kind: policy.Capacity})
		},
		Judge: func(reports []*lab.Report) lab.Outcome {
			s, c := reports[0], reports[1]
			sc0, cc0 := classByName(s, "c0"), classByName(c, "c0")
			gain := pct(sc0.ConsumerDS, cc0.ConsumerDS)
			o := lab.Outcome{
				Detail: fmt.Sprintf("flash class δs: sbqa %.4f vs capacity %.4f (%+.1f%%, threshold +5%%); "+
					"fleet-wide δs %.4f vs %.4f; flash-class p99 %.2fs vs %.2fs",
					sc0.ConsumerDS, cc0.ConsumerDS, gain,
					s.ConsumerSatisfaction, c.ConsumerSatisfaction,
					sc0.P99Response, cc0.P99Response),
				Metrics: map[string]float64{
					"sbqa_flash_ds":        sc0.ConsumerDS,
					"capacity_flash_ds":    cc0.ConsumerDS,
					"ds_gain_pct":          gain,
					"sbqa_fleet_ds":        s.ConsumerSatisfaction,
					"capacity_fleet_ds":    c.ConsumerSatisfaction,
					"sbqa_flash_p99_s":     sc0.P99Response,
					"capacity_flash_p99_s": cc0.P99Response,
				},
				Verdict: lab.Refuted,
			}
			if gain >= 5 {
				o.Verdict = lab.Confirmed
			}
			return o
		},
	})
}
