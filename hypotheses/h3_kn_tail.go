package hypotheses

import (
	"fmt"

	"sbqa/internal/lab"
)

// H3: KnBest's sampling width under heavy-tailed work. With kn=2 the
// mediator concentrates on the top-scored providers, so one Pareto-sized
// query parks a hot provider and the queue behind it eats the tail. Wider
// sampling (kn=8 of k=12) should spread those boulders.
func init() {
	lab.Register(lab.Hypothesis{
		ID: "H3-kn-heavy-tail",
		Claim: "Under Pareto(alpha=1.7) query cost, widening KnBest sampling from kn=2 " +
			"to kn=8 (k=12) cuts p99 response time by at least 20%.",
		Rationale: "Heavy-tailed service times punish deterministic best-first routing: " +
			"the best-scored provider is repeatedly chosen while it digests a boulder. " +
			"Randomizing across a wider kn trades a little score for queue diversity.",
		Scenarios: func(scale lab.Scale) []lab.Scenario {
			// Pareto(1.7) mean ≈ 1.46; rate 50 over 100 providers puts the
			// class near ρ ≈ 0.73, where a single boulder behind a hot
			// provider is felt in the tail.
			duration := pick(scale, 400, 80)
			wl := lab.Workload{
				Classes: uniformClasses(
					2,
					int(pick(scale, 10, 4)),
					int(pick(scale, 100, 25)),
					lab.ArrivalSpec{Kind: "poisson", Rate: pick(scale, 50, 12)},
					lab.CostSpec{Kind: "pareto", Xm: 0.6, Alpha: 1.7},
				),
			}
			return duel("h3", scale, wl, duration, sbqa(12, 8, 1), sbqa(12, 2, 1))
		},
		Judge: func(reports []*lab.Report) lab.Outcome {
			wide, narrow := reports[0], reports[1]
			change := pct(wide.P99Response, narrow.P99Response)
			o := lab.Outcome{
				Detail: fmt.Sprintf("kn=8 p99 %.2fs vs kn=2 %.2fs (%+.1f%%, threshold -20%%); "+
					"mean %.2fs vs %.2fs; gini %.3f vs %.3f",
					wide.P99Response, narrow.P99Response, change,
					wide.MeanResponse, narrow.MeanResponse,
					wide.GiniUtilization, narrow.GiniUtilization),
				Metrics: map[string]float64{
					"kn8_p99_s":      wide.P99Response,
					"kn2_p99_s":      narrow.P99Response,
					"p99_change_pct": change,
					"kn8_mean_s":     wide.MeanResponse,
					"kn2_mean_s":     narrow.MeanResponse,
					"kn8_gini":       wide.GiniUtilization,
					"kn2_gini":       narrow.GiniUtilization,
				},
				Verdict: lab.Refuted,
			}
			if change <= -20 {
				o.Verdict = lab.Confirmed
			}
			return o
		},
	})
}
