package hypotheses

import (
	"strings"
	"testing"

	"sbqa/internal/lab"
)

// The catalog contract: at least five registered hypotheses, each of which
// evaluates cleanly at Short scale and renders a definite verdict. Short
// verdicts are smoke signals (FINDINGS.md is generated at Full scale), so
// this test asserts mechanics, not outcomes.
func TestCatalogEvaluatesAtShortScale(t *testing.T) {
	hs := lab.Registered()
	if len(hs) < 5 {
		t.Fatalf("%d hypotheses registered, want >= 5", len(hs))
	}
	for _, h := range hs {
		h := h
		t.Run(h.ID, func(t *testing.T) {
			res, err := h.Evaluate(lab.Short)
			if err != nil {
				t.Fatal(err)
			}
			switch res.Outcome.Verdict {
			case lab.Confirmed, lab.Refuted, lab.Inconclusive:
			default:
				t.Fatalf("verdict %q is not a known verdict", res.Outcome.Verdict)
			}
			if res.Outcome.Detail == "" {
				t.Fatal("outcome has no quantitative detail")
			}
			if len(res.Reports) < 2 {
				t.Fatalf("%d reports, want a pitted pair", len(res.Reports))
			}
			for _, r := range res.Reports {
				if r.Issued < 50 {
					t.Fatalf("scenario %q issued only %d queries at short scale", r.Scenario.Name, r.Issued)
				}
			}
		})
	}
}

// Rendering the findings twice from the same code and seeds must produce
// byte-identical markdown — the document-level face of the lab's
// determinism contract.
func TestRenderFindingsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every hypothesis twice; covered unconditionally in full runs")
	}
	d1, err := lab.RenderFindings(lab.Short)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := lab.RenderFindings(lab.Short)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("same seeds produced different findings documents")
	}
	for _, h := range lab.Registered() {
		if !strings.Contains(d1, "## "+h.ID) {
			t.Fatalf("findings document missing section for %s", h.ID)
		}
	}
	if !strings.Contains(d1, "CONFIRMED") && !strings.Contains(d1, "REFUTED") {
		t.Fatal("findings document contains no definite verdicts")
	}
}
