package hypotheses

import (
	"fmt"

	"sbqa/internal/lab"
	"sbqa/internal/policy"
)

// H4: the adaptation loop as a defense. Free-riders accept work and drop
// it; consumers observe the failures, their learned intentions sour, and
// sbqa's scoring should squeeze the free-riders out of the allocation —
// something seed-blind random allocation cannot do.
func init() {
	lab.Register(lab.Hypothesis{
		ID: "H4-free-riders",
		Claim: "With 25% free-riding providers, sbqa completes at least 5% more queries " +
			"than random allocation and cuts the free-riders' allocation share by at " +
			"least 25% relative to random.",
		Rationale: "Every query a free-rider wins is lost work. Random allocation keeps " +
			"feeding them ~25% of traffic forever; sbqa folds consumer intentions (EWMA of " +
			"observed quality) into the score, so repeat offenders stop being proposed. " +
			"The ceiling is structural: only ~25% of allocations are savable at all, and " +
			"each lesson costs one timed-out query first.",
		Scenarios: func(scale lab.Scale) []lab.Scenario {
			// Free-riders contribute zero real capacity, so the honest 75% of
			// a 60-provider class must carry the load: rate 18 ⇒ ρ ≈ 0.8 over
			// the honest fleet. Small enough pools that consumers re-encounter
			// offenders and the intention EWMA can actually learn.
			duration := pick(scale, 900, 90)
			wl := lab.Workload{
				Classes: uniformClasses(
					3,
					int(pick(scale, 12, 5)),
					int(pick(scale, 60, 20)),
					lab.ArrivalSpec{Kind: "poisson", Rate: pick(scale, 18, 6)},
					lab.CostSpec{Kind: "exp", Mean: 2},
				),
				Adversaries:  lab.AdversarySpec{FreeRiders: 0.25},
				QueryTimeout: 20,
			}
			return duel("h4", scale, wl, duration, sbqa(8, 3, 1), policy.Spec{Kind: policy.Random, Seed: 1})
		},
		Judge: func(reports []*lab.Report) lab.Outcome {
			s, rnd := reports[0], reports[1]
			completedGain := pct(float64(s.Completed), float64(rnd.Completed))
			shareRatio := 0.0
			if rnd.Shares.FreeRider > 0 {
				shareRatio = s.Shares.FreeRider / rnd.Shares.FreeRider
			}
			o := lab.Outcome{
				Detail: fmt.Sprintf("sbqa completed %d vs random %d (%+.1f%%, threshold +5%%); "+
					"free-rider share %.3f vs %.3f (ratio %.2f, threshold <= 0.75)",
					s.Completed, rnd.Completed, completedGain,
					s.Shares.FreeRider, rnd.Shares.FreeRider, shareRatio),
				Metrics: map[string]float64{
					"sbqa_completed":         float64(s.Completed),
					"random_completed":       float64(rnd.Completed),
					"completed_gain_pct":     completedGain,
					"sbqa_freerider_share":   s.Shares.FreeRider,
					"random_freerider_share": rnd.Shares.FreeRider,
					"share_ratio":            shareRatio,
				},
				Verdict: lab.Refuted,
			}
			if completedGain >= 5 && shareRatio <= 0.75 {
				o.Verdict = lab.Confirmed
			}
			return o
		},
	})
}
