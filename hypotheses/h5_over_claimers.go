package hypotheses

import (
	"fmt"

	"sbqa/internal/lab"
	"sbqa/internal/policy"
)

// H5: the flip side of H4 — a self-reported-capacity allocator is the one
// that adversaries can game. Over-claimers advertise 8x their real capacity
// and understate their queues; capacity-only mediation takes the numbers at
// face value, while sbqa's satisfaction feedback discounts the lie.
func init() {
	lab.Register(lab.Hypothesis{
		ID: "H5-over-claimers",
		Claim: "With 20% over-claiming providers, capacity-only allocation routes at " +
			"least twice the allocation share to over-claimers that sbqa does, and its " +
			"p99 response time is at least 25% worse than sbqa's.",
		Rationale: "Capacity scoring trusts the snapshot: an inflated capacity and an " +
			"understated queue make an over-claimer look like the best host in the class. " +
			"SbQA blends consumer intentions learned from slow deliveries, so the same " +
			"lie stops paying after a few windows.",
		Scenarios: func(scale lab.Scale) []lab.Scenario {
			// Over-claimers run at a quarter of their true speed while
			// reporting an idle 8x machine. Rate 14 over 60 providers keeps
			// the honest fleet comfortable (ρ ≈ 0.55), so the outcome gap is
			// attributable to who takes the bait, not to global collapse.
			duration := pick(scale, 300, 60)
			wl := lab.Workload{
				Classes: uniformClasses(
					3,
					int(pick(scale, 12, 5)),
					int(pick(scale, 60, 20)),
					lab.ArrivalSpec{Kind: "poisson", Rate: pick(scale, 14, 5)},
					lab.CostSpec{Kind: "exp", Mean: 2},
				),
				Adversaries: lab.AdversarySpec{OverClaimers: 0.2},
			}
			return duel("h5", scale, wl, duration, policy.Spec{Kind: policy.Capacity}, sbqa(8, 3, 1))
		},
		Judge: func(reports []*lab.Report) lab.Outcome {
			cap, s := reports[0], reports[1]
			shareRatio := 0.0
			if s.Shares.OverClaimer > 0 {
				shareRatio = cap.Shares.OverClaimer / s.Shares.OverClaimer
			}
			p99Penalty := pct(cap.P99Response, s.P99Response)
			o := lab.Outcome{
				Detail: fmt.Sprintf("over-claimer share: capacity %.3f vs sbqa %.3f (ratio %.2f, threshold >= 2); "+
					"p99: capacity %.2fs vs sbqa %.2fs (%+.1f%%, threshold >= +25%%)",
					cap.Shares.OverClaimer, s.Shares.OverClaimer, shareRatio,
					cap.P99Response, s.P99Response, p99Penalty),
				Metrics: map[string]float64{
					"capacity_overclaimer_share": cap.Shares.OverClaimer,
					"sbqa_overclaimer_share":     s.Shares.OverClaimer,
					"share_ratio":                shareRatio,
					"capacity_p99_s":             cap.P99Response,
					"sbqa_p99_s":                 s.P99Response,
					"p99_penalty_pct":            p99Penalty,
				},
				Verdict: lab.Refuted,
			}
			if shareRatio >= 2 && p99Penalty >= 25 {
				o.Verdict = lab.Confirmed
			}
			return o
		},
	})
}
