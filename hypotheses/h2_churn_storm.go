package hypotheses

import (
	"fmt"

	"sbqa/internal/lab"
	"sbqa/internal/policy"
)

// H2: the adaptive balance ω (ICDE'09 Eq. 2) exists to re-weight consumer
// vs provider interest as conditions shift. A churn storm that knocks out
// 40% of the fleet mid-run is exactly such a shift — adaptation should pay.
func init() {
	lab.Register(lab.Hypothesis{
		ID: "H2-churn-storm",
		Claim: "After a storm takes 40% of providers offline for a third of the run, " +
			"adaptive omega finishes with mean consumer satisfaction at least 3% higher " +
			"than a fixed omega of 0.9.",
		Rationale: "Fixed omega = 0.9 keeps betting on consumer interest even while the " +
			"shrunken fleet saturates; the adaptive rule shifts weight toward provider " +
			"state when imbalance grows, spreading load over the survivors.",
		Scenarios: func(scale lab.Scale) []lab.Scenario {
			// ρ ≈ 0.7 before the storm; losing 40% of the fleet pushes the
			// survivors past saturation (ρ ≈ 1.17), which is where the
			// balance rule has to make a real trade-off.
			duration := pick(scale, 600, 60)
			wl := lab.Workload{
				Classes: uniformClasses(
					4,
					int(pick(scale, 12, 5)),
					int(pick(scale, 60, 20)),
					lab.ArrivalSpec{Kind: "poisson", Rate: pick(scale, 21, 7)},
					lab.CostSpec{Kind: "exp", Mean: 2},
				),
				Churn: lab.ChurnSpec{
					Storm: &lab.StormSpec{At: duration * 0.3, Duration: duration / 3, Fraction: 0.4},
				},
			}
			adaptive := sbqa(8, 3, 1)
			fixed := sbqa(8, 3, 1)
			fixed.OmegaMode = policy.OmegaFixed
			fixed.Omega = 0.9
			return duel("h2", scale, wl, duration, adaptive, fixed)
		},
		Judge: func(reports []*lab.Report) lab.Outcome {
			ad, fx := reports[0], reports[1]
			gain := pct(ad.ConsumerSatisfaction, fx.ConsumerSatisfaction)
			o := lab.Outcome{
				Detail: fmt.Sprintf("adaptive ω consumer δs %.4f vs fixed ω=0.9 %.4f (%+.1f%%, threshold +3%%); "+
					"provider δs %.4f vs %.4f",
					ad.ConsumerSatisfaction, fx.ConsumerSatisfaction, gain,
					ad.ProviderSatisfaction, fx.ProviderSatisfaction),
				Metrics: map[string]float64{
					"adaptive_consumer_ds": ad.ConsumerSatisfaction,
					"fixed_consumer_ds":    fx.ConsumerSatisfaction,
					"ds_gain_pct":          gain,
					"adaptive_provider_ds": ad.ProviderSatisfaction,
					"fixed_provider_ds":    fx.ProviderSatisfaction,
				},
				Verdict: lab.Refuted,
			}
			if gain >= 3 {
				o.Verdict = lab.Confirmed
			}
			return o
		},
	})
}
