// Package hypotheses is the repo's catalog of falsifiable claims about the
// SbQA engine, each registered as a lab.Hypothesis: a numeric claim, the
// scenario pair that pits it (differing in exactly one dimension), and a
// judge that renders CONFIRMED / REFUTED / INCONCLUSIVE from the reports.
//
// FINDINGS.md in this directory is the generated record of full-scale
// outcomes — regenerate it with `go run ./cmd/sbqalab report` after any
// engine or generator change. Refuted hypotheses stay in the catalog and
// in the findings: a claim the engine falsifies is a result, not a bug in
// the harness.
package hypotheses

import (
	"fmt"

	"sbqa/internal/lab"
	"sbqa/internal/policy"
)

// pick returns full at Full scale and short at Short scale.
func pick(scale lab.Scale, full, short float64) float64 {
	if scale == lab.Short {
		return short
	}
	return full
}

// duel builds the standard pitted pair: one workload (same seed, same
// traffic), two policies. Judges receive reports in [a, b] order.
func duel(name string, scale lab.Scale, wl lab.Workload, duration float64, a, b policy.Spec) []lab.Scenario {
	mk := func(spec policy.Spec, suffix string) lab.Scenario {
		return lab.Scenario{
			Name:     fmt.Sprintf("%s/%s-%s", name, suffix, scale),
			Seed:     1041,
			Duration: duration,
			Window:   8,
			Policy:   spec,
			Workload: wl,
		}
	}
	return []lab.Scenario{mk(a, string(a.Kind)+"-a"), mk(b, string(b.Kind)+"-b")}
}

// uniformClasses builds n identical classes named c0..cn-1.
func uniformClasses(n, consumers, providers int, arr lab.ArrivalSpec, cost lab.CostSpec) []lab.ClassSpec {
	out := make([]lab.ClassSpec, n)
	for i := range out {
		out[i] = lab.ClassSpec{
			Name:      fmt.Sprintf("c%d", i),
			Consumers: consumers,
			Providers: providers,
			Arrival:   arr,
			Cost:      cost,
		}
	}
	return out
}

func sbqa(k, kn int, seed uint64) policy.Spec {
	return policy.Spec{Kind: policy.SbQA, K: k, Kn: kn, Seed: seed}
}

// pct returns the relative change of got against base in percent
// (negative = got is lower).
func pct(got, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (got - base) / base * 100
}

// classByName finds a per-class report; judges use it to zoom in on the
// class a disturbance targets. Returns a zero report if absent.
func classByName(r *lab.Report, name string) lab.ClassReport {
	for _, c := range r.Classes {
		if c.Name == name {
			return c
		}
	}
	return lab.ClassReport{}
}
