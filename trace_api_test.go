// Tests for the tracing facade: full-pipeline span capture at sample 1.0 on
// both submission fronts, the explain record's completeness, and the
// zero-alloc guarantee when sampling is off (the allocgate's companion: the
// CI bench gate catches allocs/op drift, this test pins the cause to
// tracing specifically by diffing a traced-at-zero engine against an
// untraced one on the identical hot path).
package sbqa

import (
	"context"
	"testing"
	"time"

	"sbqa/internal/core"
)

// traceTestService builds a single-shard blocking service over constant
// providers, optionally with a recorder at the given sampling rate.
func traceTestService(t testing.TB, traced bool, sample float64) *LiveService {
	t.Helper()
	cfg := LiveConfig{
		Window:      50,
		Concurrency: 1,
		NewAllocator: func(shard int) Allocator {
			c := core.DefaultConfig()
			c.Seed = uint64(shard) + 1
			return core.MustNew(c)
		},
	}
	if traced {
		cfg.Trace = &TraceConfig{Sample: sample, Buffer: 16}
	}
	svc, err := NewLiveEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		svc.RegisterProvider(providerStub{id: ProviderID(i), pi: Intention(float64(i%9)/9 - 0.3)})
	}
	svc.RegisterConsumer(LiveFuncConsumer{ID: 0, Fn: func(q Query, snap ProviderSnapshot) Intention {
		return Intention(float64(int(snap.ID)%7)/7 - 0.2)
	}})
	return svc
}

// spanIndex maps stage name → span views, asserting Start <= End on each.
func spanIndex(t *testing.T, v TraceView) map[string][]TraceSpanView {
	t.Helper()
	byName := make(map[string][]TraceSpanView)
	for _, s := range v.Spans {
		if s.StartNS > s.EndNS {
			t.Errorf("span %s: start %d after end %d", s.Name, s.StartNS, s.EndNS)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	return byName
}

// TestTracingBlockingSubmitTrace: at sample 1.0 every blocking Submit leaves
// a finished trace carrying the mediation stages (fanout, impute, score,
// dispatch — the blocking front has no queue) and a complete explain record:
// one ranked entry per proposed provider with the score inputs.
func TestTracingBlockingSubmitTrace(t *testing.T) {
	svc := traceTestService(t, true, 1)
	a, err := svc.Submit(context.Background(), Query{Consumer: 0, N: 2, Work: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := svc.Tracer()
	if tr == nil {
		t.Fatal("traced engine has no recorder")
	}
	v, ok := tr.TraceByQuery(a.Query.ID)
	if !ok {
		t.Fatalf("no trace for query %d", a.Query.ID)
	}
	if v.Status != "allocated" {
		t.Fatalf("status %q, want allocated", v.Status)
	}
	if v.TraceID == "" || len(v.TraceID) != 32 {
		t.Errorf("trace_id %q, want 32 hex digits", v.TraceID)
	}
	byName := spanIndex(t, v)
	for _, stage := range []string{StageFanout, StageImpute, StageScore, StageDispatch} {
		if len(byName[stage]) != 1 {
			t.Errorf("stage %s: %d spans, want 1 (have %v)", stage, len(byName[stage]), stageNames(v))
		}
	}
	// The pipeline is sequential on this front: fanout → impute → score →
	// dispatch, each stage starting no earlier than the previous one.
	order := []string{StageFanout, StageImpute, StageScore, StageDispatch}
	for i := 1; i < len(order); i++ {
		prev, cur := byName[order[i-1]], byName[order[i]]
		if len(prev) == 1 && len(cur) == 1 && cur[0].StartNS < prev[0].StartNS {
			t.Errorf("stage %s starts at %d before %s at %d", order[i], cur[0].StartNS, order[i-1], prev[0].StartNS)
		}
	}
	if v.Explain == nil {
		t.Fatal("finished allocated trace has no explain record")
	}
	if len(v.Explain.Entries) != len(a.Proposed) {
		t.Fatalf("explain has %d entries for %d proposed providers", len(v.Explain.Entries), len(a.Proposed))
	}
	for i, e := range v.Explain.Entries {
		if e.Rank != i+1 {
			t.Errorf("entry %d: rank %d, want %d", i, e.Rank, i+1)
		}
		if e.Omega < 0 || e.Omega > 1 {
			t.Errorf("entry %d: omega %v outside [0,1]", i, e.Omega)
		}
	}
}

// TestTracingAsyncEngineTrace: the ticketed front additionally records the
// queue stage, so an async submit at sample 1.0 yields at least the five
// pipeline stages with a monotonic clock across them.
func TestTracingAsyncEngineTrace(t *testing.T) {
	eng, err := NewEngine(
		WithWindow(50),
		WithConcurrency(1),
		WithTracing(1, 16),
		WithAllocatorFactory(func(shard int) Allocator {
			c := core.DefaultConfig()
			c.Seed = uint64(shard) + 1
			return core.MustNew(c)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 40; i++ {
		eng.RegisterProvider(providerStub{id: ProviderID(i), pi: Intention(float64(i%9)/9 - 0.3)})
	}
	eng.RegisterConsumer(LiveFuncConsumer{ID: 0, Fn: func(q Query, snap ProviderSnapshot) Intention {
		return Intention(float64(int(snap.ID)%7)/7 - 0.2)
	}})
	a, err := eng.Submit(context.Background(), Query{Consumer: 0, N: 2, Work: 10}).Allocation()
	if err != nil {
		t.Fatal(err)
	}
	// The shard goroutine finishes the trace after releasing the ticket
	// waiter, so poll briefly for the terminal status.
	tr := eng.Tracer()
	var v TraceView
	deadline := time.Now().Add(2 * time.Second)
	for {
		var ok bool
		if v, ok = tr.TraceByQuery(a.Query.ID); ok && v.Status != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace for query %d never finished (ok=%v status=%q)", a.Query.ID, ok, v.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if v.Status != "allocated" {
		t.Fatalf("status %q, want allocated", v.Status)
	}
	byName := spanIndex(t, v)
	for _, stage := range []string{StageQueue, StageFanout, StageImpute, StageScore, StageDispatch} {
		if len(byName[stage]) == 0 {
			t.Errorf("stage %s missing (have %v)", stage, stageNames(v))
		}
	}
	if v.Explain == nil || len(v.Explain.Entries) == 0 {
		t.Fatal("async trace has no explain entries")
	}
}

func stageNames(v TraceView) []string {
	names := make([]string, len(v.Spans))
	for i, s := range v.Spans {
		names[i] = s.Name
	}
	return names
}

// TestTracingDisabledZeroAllocSubmit is the allocgate's root cause test: an
// engine built with tracing at sample 0 must allocate exactly as much per
// blocking Submit as an engine built with no tracer at all. CI enforces the
// absolute number through BenchmarkMediateEndToEnd; this pins any regression
// to the tracing branches specifically.
func TestTracingDisabledZeroAllocSubmit(t *testing.T) {
	measure := func(svc *LiveService) float64 {
		q := Query{Consumer: 0, N: 2, Work: 10}
		ctx := context.Background()
		// Warm the per-shard pools (scratch buffers, flat scoring arrays)
		// before measuring, as the bench gate's 2000-iteration runs do.
		for i := 0; i < 100; i++ {
			if _, err := svc.Submit(ctx, q, nil); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := svc.Submit(ctx, q, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	untraced := measure(traceTestService(t, false, 0))
	tracedOff := measure(traceTestService(t, true, 0))
	if tracedOff != untraced {
		t.Fatalf("sampling-off Submit allocates %.1f/op, untraced %.1f/op — tracing must add zero", tracedOff, untraced)
	}
}
