package sbqa

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFacadeSymbolSmoke exercises every symbol re-exported by sbqa.go at
// least once — type aliases by declaration, constructors and functions by
// call — so any drift between the facade and the internal packages fails
// this test (or its compilation) instead of a downstream embedder.
func TestFacadeSymbolSmoke(t *testing.T) {
	// Domain model aliases.
	var (
		_ ConsumerID       = 0
		_ ProviderID       = 0
		_ QueryID          = 0
		_ Intention        = 0.5
		_ Query            = Query{Consumer: 0, N: 1, Work: 1}
		_ ProviderSnapshot = ProviderSnapshot{}
		_ Allocation
	)

	// Allocators.
	var allocators = []Allocator{
		NewSbQA(SbQAConfig{}),
		NewCapacityAllocator(),
		NewEconomicAllocator(1),
		NewRandomAllocator(2),
		NewRoundRobinAllocator(),
		NewShareBasedAllocator(),
	}
	for _, a := range allocators {
		if a.Name() == "" {
			t.Error("allocator without a name")
		}
	}
	if _, err := NewSbQAChecked(SbQAConfig{KnBest: KnBestParams{K: 2, Kn: 9}}); err == nil {
		t.Error("NewSbQAChecked accepted kn > k")
	}
	if NewSbQA(SbQAConfig{Omega: FixedOmega(0.5)}) == nil {
		t.Error("FixedOmega config rejected")
	}
	var _ Env // allocators consult the batched mediation environment
	var _ SbQA

	// Env v2 protocol surface: the legacy adapter turns any v1 environment
	// into the batched protocol, preserving values exactly.
	var v2 Env = Legacy(staticEnvStub{})
	var _ LegacyEnv = Legacy(staticEnvStub{})
	var _ EnvV1 = staticEnvStub{}
	set, err := v2.Intentions(context.Background(), Query{Consumer: 0, N: 1, Work: 1},
		[]ProviderSnapshot{{ID: 7, Capacity: 1}})
	if err != nil || set.Len() != 1 || set.CI[0] != 0.25 || set.PI[0] != -0.5 {
		t.Errorf("LegacyEnv.Intentions = %+v, %v", set, err)
	}
	if set.ImputedCount() != 0 || set.ProviderImputed(0) {
		t.Errorf("legacy batch marked imputed: %+v", set)
	}
	var _ IntentionSet = set
	var (
		_ ConsumerParticipant
		_ ProviderParticipant
		_ BidderParticipant
		_ Imputation
	)

	// Scoring and satisfaction.
	if Omega(0.5, 0.5) != 0.5 {
		t.Error("Omega broken")
	}
	var _ *Scorer = NewScorer()
	var _ *ConsumerTracker = NewConsumerTracker(5)
	var _ *ProviderTracker = NewProviderTracker(5)
	var _ *SatisfactionRegistry = NewSatisfactionRegistry(5)

	// Intention policies.
	var (
		_ ConsumerPolicy = PreferenceConsumer{}
		_ ConsumerPolicy = ReputationBlendConsumer{}
		_ ConsumerPolicy = ResponseTimeConsumer{}
		_ ConsumerPolicy = AdaptiveConsumer{}
		_ ProviderPolicy = PreferenceProvider{}
		_ ProviderPolicy = LoadOnlyProvider{}
		_ ProviderPolicy = BlendProvider{}
		_ ProviderPolicy = AdaptiveProvider{}
		_ ConsumerInputs
		_ ProviderInputs
	)

	// Mediation pipeline.
	med := NewMediator(NewCapacityAllocator(), MediatorConfig{Window: 10})
	var _ *Mediator = med
	var _ Consumer = consumerStub{}
	var _ Provider = providerStub{}
	dir := NewDirectory()
	var _ *ProviderDirectory = dir
	var _ MediatorDirectory = dir
	var _ CapabilityReporter
	med.RegisterConsumer(consumerStub{id: 0})
	if _, err := med.Mediate(context.Background(), 0, Query{Consumer: 0, N: 1, Work: 1}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
	if errors.Is(ErrStaleSelection, ErrNoCandidates) {
		t.Error("stale selection must stay distinct from no-candidates")
	}

	// Simulation world & experiments (construction only; runs are covered
	// by the scenario tests).
	cfg := DefaultWorldConfig(10, 1)
	cfg.Mode = Captive
	if cfg.Mode == Autonomous {
		t.Error("mode constants collide")
	}
	if _, err := NewWorld(NewCapacityAllocator(), cfg); err != nil {
		t.Fatal(err)
	}
	var (
		_ *World
		_ WorldConfig    = cfg
		_ WorldMode      = Captive
		_ WorkloadConfig = cfg.Workload
		_ ProjectSpec
		_ Popularity = Popular
		_ Popularity = Normal
		_ Popularity = Unpopular
		_ RunResult
		_ ResultTable
		_ ExperimentOptions
		_ *ScenarioResult
	)
	scenarios := []func(ExperimentOptions) (*ScenarioResult, error){
		Scenario1, Scenario2, Scenario3, Scenario4, Scenario5, Scenario6, Scenario7,
		MotivatingExample, MaliciousStudy, ReplicationStudy, AdWordsStudy,
	}
	for i, fn := range scenarios {
		if fn == nil {
			t.Errorf("scenario %d is nil", i)
		}
	}
	_ = RunAllScenarios // exercised (expensively) by TestPublicScenarioAndRender
	_ = RenderScenarios // ditto

	// Topics / AdWords.
	v := TopicVector{1, 0}
	if TopicPreference(v, v) <= 0 {
		t.Error("TopicPreference of identical vectors must be positive")
	}
	var _ *TopicInterests = NewTopicInterests(v)
	var (
		_ TopicCampaign
		_ *AdWorld
		_ AdWorldConfig
		_ Advertiser
	)
	_ = NewAdWorld

	// Live runtime v1 surface.
	var _ *LiveService = NewLiveService(NewCapacityAllocator(), 10)
	if _, err := NewLiveEngine(LiveConfig{Window: 10, Allocator: NewCapacityAllocator()}); err != nil {
		t.Fatal(err)
	}
	var (
		_ LiveResult
		_ LiveFuncConsumer
		_ *LiveWorker
		_ LiveExecutor = (*LiveWorker)(nil)
	)
	_ = WithParticipantDeadline(time.Millisecond) // v2 fan-out option

	// Policy control plane.
	var _ PolicyKind = PolicySbQA
	for _, k := range []PolicyKind{PolicyCapacity, PolicyEconomic, PolicyRandom, PolicyRoundRobin, PolicyShareBased} {
		if _, err := (PolicySpec{Kind: k}).Build(0); err != nil {
			t.Errorf("PolicySpec{%q}.Build: %v", k, err)
		}
	}
	if len(PolicyKinds()) != 6 {
		t.Errorf("PolicyKinds() = %v, want all 6 kinds", PolicyKinds())
	}
	def := DefaultPolicy()
	if err := def.Validate(); err != nil {
		t.Errorf("DefaultPolicy invalid: %v", err)
	}
	var _ PolicyOmegaMode = PolicyOmegaAdaptive
	var _ PolicyOmegaMode = PolicyOmegaFixed
	var _ PolicyDuration = PolicyDuration(time.Millisecond)
	var _ PolicyChange
	if _, err := ParsePolicy([]byte(`{"kind":"sbqa","k":4,"kn":2}`)); err != nil {
		t.Errorf("ParsePolicy: %v", err)
	}
	var _ *StaticEnv = NewStaticEnv()
	var (
		_ *Tuner
		_ TunerConfig
		_ TunerStats
	)
	_ = WithPolicy
	_ = WithTuner
	_ = NewTuner

	// Durability surface.
	var (
		_ PersistenceStats
		_ RestoreStats
	)
	if ErrPersistCorrupt == nil {
		t.Error("ErrPersistCorrupt is nil")
	}
	_ = WithPersistence
	_ = PersistSyncEvery
	_ = PersistSegmentBytes
	_ = PersistQueueDepth
	_ = PersistCompactAfterSegments
	_ = PersistCompactInterval
}

// TestFacadePersistenceFlow drives the durability surface through the
// facade: a persistent engine accumulates state, closes gracefully, and a
// second engine over the same directory restores it.
func TestFacadePersistenceFlow(t *testing.T) {
	dir := t.TempDir()
	build := func() *Engine {
		eng, err := NewEngine(
			WithWindow(10),
			WithPolicy(PolicySpec{Kind: PolicySbQA, K: 4, Kn: 2, Seed: 1}),
			WithClock(func() float64 { return 1 }),
			WithPersistence(dir, PersistSyncEvery(1), PersistQueueDepth(128)),
		)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	eng := build()
	w, err := NewLiveWorker(1, 100, 4, func(Query) Intention { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	eng.RegisterWorker(w)
	eng.RegisterConsumer(LiveFuncConsumer{ID: 0, Fn: func(Query, ProviderSnapshot) Intention { return 0.7 }})
	tk := eng.Submit(context.Background(), Query{Consumer: 0, N: 1, Work: 1})
	if _, err := tk.Await(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := eng.ConsumerSatisfaction(0)
	st := eng.Stats()
	if st.Persistence == nil {
		t.Fatal("EngineStats.Persistence nil with WithPersistence")
	}
	eng.Close()
	w.Close()

	eng2 := build()
	defer eng2.Close()
	st2 := eng2.Stats()
	if st2.Persistence == nil || !st2.Persistence.Restore.SnapshotLoaded {
		t.Fatal("facade restart did not restore a snapshot")
	}
	if got := eng2.ConsumerSatisfaction(0); got != before {
		t.Errorf("restored consumer δs %v, want %v", got, before)
	}
}

// TestFacadePolicyFlow drives the control plane through the facade: a
// policy-built engine, a hot Reconfigure observed as a typed event, and a
// standalone tuner bound through the public Reconfigurer surface.
func TestFacadePolicyFlow(t *testing.T) {
	var changes int
	eng, err := NewEngine(
		WithWindow(10),
		WithPolicy(PolicySpec{Kind: PolicySbQA, K: 4, Kn: 2, Seed: 1}),
		WithObserver(ObserverFuncs{PolicyChange: func(pc PolicyChange) {
			if pc.Generation == 1 && pc.Kind == string(PolicyCapacity) {
				changes++
			}
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var _ Reconfigurer = eng
	if _, ok := eng.Policy(); !ok {
		t.Fatal("policy-built engine reports no policy")
	}
	if err := eng.Reconfigure(context.Background(), PolicySpec{Kind: PolicyCapacity}); err != nil {
		t.Fatal(err)
	}
	if changes != 1 {
		t.Fatalf("PolicyChange events = %d, want 1", changes)
	}
	if spec, _ := eng.Policy(); spec.Kind != PolicyCapacity {
		t.Fatalf("Policy() = %+v after reconfigure", spec)
	}
	if eng.PolicyGeneration() != 1 {
		t.Fatalf("PolicyGeneration() = %d, want 1", eng.PolicyGeneration())
	}

	tu := NewTuner(eng, TunerConfig{})
	tu.Observe(SatisfactionSnapshot{Time: 1})
	if st := tu.Stats(); st.Snapshots != 0 && st.Dropped == 0 {
		t.Fatalf("unexpected tuner stats before start: %+v", st)
	}
	tu.Close()
}

// staticEnvStub is a minimal EnvV1 implementation for the legacy-adapter
// smoke check.
type staticEnvStub struct{}

func (staticEnvStub) ConsumerIntention(Query, ProviderSnapshot) Intention { return 0.25 }
func (staticEnvStub) ProviderIntention(Query, ProviderSnapshot) Intention { return -0.5 }
func (staticEnvStub) ProviderBid(q Query, _ ProviderSnapshot) float64     { return q.Work }
func (staticEnvStub) ConsumerSatisfaction(ConsumerID) float64             { return 0.5 }
func (staticEnvStub) ProviderSatisfaction(ProviderID) float64             { return 0.5 }

// TestFacadeEngineFlow drives the full v2 surface end to end through the
// facade: functional options, observer, ticket submission, typed dispatch
// errors, stats.
func TestFacadeEngineFlow(t *testing.T) {
	var events int
	obs := ObserverFuncs{Allocation: func(*Allocation, int) { events++ }}
	var _ Observer = NopObserver{}
	var _ SatisfactionSnapshot

	eng, err := NewEngine(
		WithWindow(20),
		WithConcurrency(1),
		WithAllocator(NewSbQA(SbQAConfig{KnBest: KnBestParams{K: 4, Kn: 2}, Seed: 3})),
		WithAnalyzeBest(true),
		WithClock(func() float64 { return 1 }),
		WithObserver(MultiObserver(obs, NopObserver{})),
		WithQueueDepth(64),
		WithSnapshotInterval(time.Hour), // wired, but never fires in-test
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var _ *Engine = eng

	w, err := NewLiveWorker(0, 1000, 16, func(Query) Intention { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	eng.RegisterWorker(w)
	eng.RegisterConsumer(LiveFuncConsumer{ID: 0, Fn: func(Query, ProviderSnapshot) Intention { return 0.5 }})

	results := make(chan LiveResult, 1)
	tk := eng.Submit(context.Background(), Query{Consumer: 0, N: 1, Work: 0.1}, WithResults(results))
	var _ *Ticket = tk
	a, err := tk.Allocation()
	if err != nil || len(a.Selected) != 1 {
		t.Fatalf("allocation %v err %v", a, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if rs, err := tk.Await(ctx); err != nil || len(rs) != 1 {
		t.Fatalf("await: %v %v", rs, err)
	}
	<-results // forwarded copy

	// Fire-and-forget option compiles and runs.
	tk2 := eng.Submit(context.Background(), Query{Consumer: 0, N: 1, Work: 0.1}, FireAndForget())
	if _, err := tk2.Allocation(); err != nil {
		t.Fatal(err)
	}

	var st EngineStats = eng.Stats()
	if st.Mediations() != 2 || len(st.Shards) != 1 {
		t.Errorf("stats = %+v, want 2 mediations on 1 shard", st)
	}
	var _ ShardStats = st.Shards[0]
	if events != 2 {
		t.Errorf("observer saw %d allocations, want 2", events)
	}

	// Typed dispatch error through the facade.
	w.Close()
	tk3 := eng.Submit(context.Background(), Query{Consumer: 0, N: 1, Work: 0.1})
	_, derr := tk3.Allocation()
	if !errors.Is(derr, ErrDispatch) {
		t.Fatalf("err = %v, want ErrDispatch", derr)
	}
	de, ok := AsDispatchError(derr)
	if !ok || len(de.Failed) != 1 {
		t.Fatalf("AsDispatchError = %v %v", de, ok)
	}
	var _ *DispatchError = de

	eng.Close()
	if _, err := eng.Submit(context.Background(), Query{Consumer: 0, N: 1, Work: 1}).Allocation(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("post-close err = %v, want ErrEngineClosed", err)
	}
}
